(** Inline-decision provenance: why the oracle inlined — or refused —
    every context-sensitive candidate it considered.

    The oracle (paper §3.1) reaches each verdict from three ingredients:
    the compilation context (the chain of call sites being expanded,
    innermost-first), the profile rules matched against that context
    under Eq. 3 partial matching, and the static size/depth budgets.
    A {!decision} record captures all three at the moment of the
    verdict, so a run can be debugged decision-by-decision afterwards
    ([acsi-run explain]) instead of from end-of-run aggregates.

    Records are appended by the oracle's decision sink and never
    influence the run: building them reads profile state but charges no
    cycles and mutates nothing outside this store. *)

open Acsi_bytecode
open Acsi_profile

type outcome =
  | Inlined of { guarded : bool }
  | Refused of string
      (** taxonomy string from {!Acsi_jit.Oracle.refusal_reason_to_string}
          (["too-large"], ["budget"], ["depth"], ["recursive"],
          ["context-conflict"], ["not-hot"], ["guard-limit"]) or
          ["no-match"] when no profile rule survived partial matching at
          a polymorphic site (then [i_callee] is [None]). *)

type info = {
  i_root : Ids.Method_id.t;  (** method being optimized *)
  i_context : Trace.entry array;
      (** compilation context, innermost-first; entry 0 is the call
          site itself *)
  i_callee : Ids.Method_id.t option;
      (** candidate under consideration; [None] only for ["no-match"] *)
  i_outcome : outcome;
  i_match_depth : int;
      (** Eq. 3 partial-match depth: over the applicable rules for this
          callee, the maximum number of innermost chain entries shared
          with the compilation context (0 = no rule matched; the
          candidate came from static heuristics alone) *)
  i_match_weight : float;
      (** summed weight of the applicable rules backing this candidate
          (the oracle's hotness evidence; 0 when no rule matched) *)
  i_matched_rule : Trace.t option;
      (** the deepest (ties: heaviest) applicable rule's trace *)
  i_inline_depth : int;  (** inline depth at the decision *)
  i_expanded_units : int;  (** units already emitted for the root *)
  i_est : int;  (** estimated size of the candidate body, in units *)
  i_budget_limit : int;
      (** normal expansion budget: [factor * root + slack] units *)
  i_budget_ext_limit : int;  (** extended budget for hot/tiny callees *)
  i_speculative : bool;
      (** the inline was emitted with {e no} guard on the strength of a
          loaded-CHA monomorphism proof plus receiver pre-existence;
          safety rests on deopt-on-invalidation, not on a check *)
}

type source =
  | Sampled
      (** the ordinary reactive path: the oracle consulted profile rules
          built from DCG samples (even if none matched) *)
  | Static
      (** the static pre-warm oracle: the decision was reached at
          method-install time from interprocedural summaries
          ({!Acsi_analysis.Summary}), before any sample existed *)
  | Speculative
      (** the decision carries at least one guard-free speculative
          inline ([i_speculative]); the installed code records the CHA
          assumption and relies on deoptimization for safety *)

type decision = private {
  d_seq : int;  (** 0-based emission order *)
  d_cycle : int;  (** virtual cycle when the oracle decided *)
  d_source : source;
  d_info : info;
}

(** {2 Execution-tier decisions}

    A second reason axis, orthogonal to inlining: what happened when the
    AOS tried to move a freshly installed optimized method onto the
    closure execution tier. *)

type tier_outcome =
  | Tier_compiled  (** closure-tier code installed *)
  | Tier_rejected of string
      (** the [Jit_check] install gate refused the code (first
          diagnostic); the method stays on the interpreter tier *)
  | Tier_fell_back of string
      (** the tier compiler itself failed; the method stays on the
          interpreter tier *)

type tier_decision = private {
  td_seq : int;  (** 0-based emission order, separate from inline seq *)
  td_cycle : int;  (** virtual cycle at the decision *)
  td_meth : Ids.Method_id.t;
  td_outcome : tier_outcome;
}

type t

val create : ?now:(unit -> int) -> unit -> t
(** [now] reads the virtual clock for {!decision.d_cycle} (default:
    always 0). *)

val add : ?source:source -> t -> info -> unit
(** Default source: {!Sampled}. *)

val add_tier : t -> Ids.Method_id.t -> tier_outcome -> unit

val count : t -> int
val all : t -> decision list
(** Emission order. *)

val tier_count : t -> int
val tier_all : t -> tier_decision list
(** Emission order. *)

val tier_outcome_counts : t -> int * int * int
(** [(compiled, rejected, fell_back)]. *)

val at : t -> caller:Ids.Method_id.t -> ?callsite:int -> unit -> decision list
(** Decisions whose innermost context entry is a call site in [caller]
    (optionally at exactly [callsite]). *)

val outcome_counts : t -> int * int
(** [(inlined, refused)]. *)

val source_counts : t -> int * int * int
(** [(sampled, static, speculative)]: decisions by {!source}. *)

val pp_decision :
  name:(Ids.Method_id.t -> string) ->
  Format.formatter ->
  decision ->
  unit
(** One multi-line, human-readable record; [name] resolves method ids
    (e.g. via [Program.meth]). *)

val pp_tier_decision :
  name:(Ids.Method_id.t -> string) ->
  Format.formatter ->
  tier_decision ->
  unit
(** One-line record for an execution-tier decision. *)
