let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_jstr b s =
  Buffer.add_char b '"';
  json_escape b s;
  Buffer.add_char b '"'

(* Track -> tid, assigned in first-seen order so output is independent
   of hash-table iteration order. *)
let track_ids tracer =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  let next = ref 0 in
  let see track =
    if not (Hashtbl.mem tbl track) then begin
      incr next;
      Hashtbl.add tbl track !next;
      order := track :: !order
    end
  in
  Tracer.iter tracer ~f:(fun e ->
      match e with
      | Tracer.Span { track; _ } | Tracer.Counter { track; _ }
      | Tracer.Instant { track; _ } | Tracer.Flow { track; _ } ->
          see track);
  (tbl, List.rev !order)

let to_chrome_json b tracer =
  let tids, order = track_ids tracer in
  let tid track = Hashtbl.find tids track in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n";
    ()
  in
  List.iter
    (fun track ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":"
           (tid track));
      add_jstr b track;
      Buffer.add_string b "}}")
    order;
  Tracer.iter tracer ~f:(fun e ->
      sep ();
      match e with
      | Tracer.Span { track; name; t0; t1 } ->
          Buffer.add_string b
            (Printf.sprintf "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":"
               (tid track) t0 (t1 - t0));
          add_jstr b name;
          Buffer.add_string b "}"
      | Tracer.Counter { track; name; t; value } ->
          Buffer.add_string b
            (Printf.sprintf "{\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"name\":"
               (tid track) t);
          add_jstr b name;
          Buffer.add_string b
            (Printf.sprintf ",\"args\":{\"value\":%d}}" value)
      | Tracer.Instant { track; name; t; args } ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"s\":\"t\",\"name\":"
               (tid track) t);
          add_jstr b name;
          Buffer.add_string b ",\"args\":{";
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char b ',';
              add_jstr b k;
              Buffer.add_char b ':';
              add_jstr b v)
            args;
          Buffer.add_string b "}}"
      | Tracer.Flow { track; name; t; id; dir } ->
          (* ph "s" starts the arrow, ph "f" (binding enclosing, so the
             arrow terminates at the slice spanning [t]) ends it; the
             shared numeric id links the two halves. *)
          let ph, extra =
            match dir with Tracer.Out -> ("s", "") | Tracer.In -> ("f", ",\"bp\":\"e\"")
          in
          Buffer.add_string b
            (Printf.sprintf
               "{\"ph\":\"%s\"%s,\"cat\":\"flow\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"id\":%d,\"name\":"
               ph extra (tid track) t id);
          add_jstr b name;
          Buffer.add_string b "}");
  Buffer.add_string b "]}\n"

let to_jsonl b tracer =
  Tracer.iter tracer ~f:(fun e ->
      (match e with
      | Tracer.Span { track; name; t0; t1 } ->
          Buffer.add_string b "{\"ev\":\"span\",\"track\":";
          add_jstr b track;
          Buffer.add_string b ",\"name\":";
          add_jstr b name;
          Buffer.add_string b
            (Printf.sprintf ",\"t0\":%d,\"t1\":%d,\"dur\":%d}" t0 t1 (t1 - t0))
      | Tracer.Counter { track; name; t; value } ->
          Buffer.add_string b "{\"ev\":\"counter\",\"track\":";
          add_jstr b track;
          Buffer.add_string b ",\"name\":";
          add_jstr b name;
          Buffer.add_string b (Printf.sprintf ",\"t\":%d,\"value\":%d}" t value)
      | Tracer.Instant { track; name; t; args } ->
          Buffer.add_string b "{\"ev\":\"instant\",\"track\":";
          add_jstr b track;
          Buffer.add_string b ",\"name\":";
          add_jstr b name;
          Buffer.add_string b (Printf.sprintf ",\"t\":%d,\"args\":{" t);
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char b ',';
              add_jstr b k;
              Buffer.add_char b ':';
              add_jstr b v)
            args;
          Buffer.add_string b "}}"
      | Tracer.Flow { track; name; t; id; dir } ->
          Buffer.add_string b
            (match dir with
            | Tracer.Out -> "{\"ev\":\"flow-out\",\"track\":"
            | Tracer.In -> "{\"ev\":\"flow-in\",\"track\":");
          add_jstr b track;
          Buffer.add_string b ",\"name\":";
          add_jstr b name;
          Buffer.add_string b (Printf.sprintf ",\"t\":%d,\"id\":%d}" t id));
      Buffer.add_char b '\n')

let track_totals tracer =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Tracer.iter tracer ~f:(fun e ->
      match e with
      | Tracer.Span { track; t0; t1; _ } ->
          (match Hashtbl.find_opt tbl track with
          | Some acc -> Hashtbl.replace tbl track (acc + (t1 - t0))
          | None ->
              Hashtbl.add tbl track (t1 - t0);
              order := track :: !order)
      | Tracer.Counter _ | Tracer.Instant _ | Tracer.Flow _ -> ());
  List.rev_map (fun track -> (track, Hashtbl.find tbl track)) !order
  |> List.rev

let pp_breakdown ~total fmt rows =
  let pct v =
    if total <= 0 then 0.0 else 100.0 *. float_of_int v /. float_of_int total
  in
  let width =
    List.fold_left (fun acc (nm, _) -> max acc (String.length nm)) 9 rows
  in
  Format.fprintf fmt "@[<v>%-*s %14s %8s@," width "component" "cycles" "total%";
  List.iter
    (fun (nm, v) ->
      Format.fprintf fmt "%-*s %14d %7.3f%%@," width nm v (pct v))
    rows;
  let sum = List.fold_left (fun acc (_, v) -> acc + v) 0 rows in
  Format.fprintf fmt "%-*s %14d %7.3f%%@]" width "(overhead)" sum (pct sum)

(* --- fleet-telemetry text formats ----------------------------------- *)
(* OpenMetrics and JSONL renderers for {!Timeseries} and {!Hist}. All
   timestamps are virtual cycles (the OpenMetrics "seconds" slot carries
   cycles — same license as the chrome export's 1 cycle = 1 "us"), so
   both formats are byte-deterministic across hosts and --jobs. *)

let add_label_set b labels =
  match labels with
  | [] -> ()
  | labels ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b k;
          Buffer.add_string b "=\"";
          json_escape b v;
          Buffer.add_string b "\"")
        labels;
      Buffer.add_char b '}'

let series_openmetrics b ~prefix ?(labels = []) s =
  let n = Timeseries.length s in
  List.iteri
    (fun c col ->
      let metric = prefix ^ col in
      Buffer.add_string b ("# TYPE " ^ metric ^ " gauge\n");
      for i = 0 to n - 1 do
        let t, vs = Timeseries.row s i in
        Buffer.add_string b metric;
        add_label_set b labels;
        Buffer.add_string b (Printf.sprintf " %d %d\n" vs.(c) t)
      done)
    (Timeseries.columns s)

let hist_openmetrics b ~name ?(labels = []) h =
  Buffer.add_string b ("# TYPE " ^ name ^ " histogram\n");
  let bucket le cum =
    Buffer.add_string b (name ^ "_bucket");
    add_label_set b (labels @ [ ("le", le) ]);
    Buffer.add_string b (Printf.sprintf " %d\n" cum)
  in
  let cum = ref 0 in
  Hist.iter_buckets h ~f:(fun ~lo:_ ~hi ~count ->
      cum := !cum + count;
      bucket (string_of_int hi) !cum);
  bucket "+Inf" (Hist.count h);
  Buffer.add_string b (name ^ "_sum");
  add_label_set b labels;
  Buffer.add_string b (Printf.sprintf " %d\n" (Hist.sum h));
  Buffer.add_string b (name ^ "_count");
  add_label_set b labels;
  Buffer.add_string b (Printf.sprintf " %d\n" (Hist.count h))

let add_jlabels b labels =
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ',';
      add_jstr b k;
      Buffer.add_char b ':';
      add_jstr b v)
    labels

let series_jsonl b ~name ?(labels = []) s =
  let cols = Timeseries.columns s in
  Timeseries.iter s ~f:(fun ~now vs ->
      Buffer.add_string b "{\"ev\":\"sample\",\"series\":";
      add_jstr b name;
      add_jlabels b labels;
      Buffer.add_string b (Printf.sprintf ",\"t\":%d" now);
      List.iteri
        (fun c col ->
          Buffer.add_char b ',';
          add_jstr b col;
          Buffer.add_string b (Printf.sprintf ":%d" vs.(c)))
        cols;
      Buffer.add_string b "}\n")

let hist_jsonl b ~name ?(labels = []) h =
  Buffer.add_string b "{\"ev\":\"hist\",\"name\":";
  add_jstr b name;
  add_jlabels b labels;
  Buffer.add_string b
    (Printf.sprintf ",\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d" (Hist.count h)
       (Hist.sum h) (Hist.min_value h) (Hist.max_value h));
  Buffer.add_string b
    (Printf.sprintf ",\"p50\":%d,\"p90\":%d,\"p99\":%d" (Hist.quantile h 50.0)
       (Hist.quantile h 90.0) (Hist.quantile h 99.0));
  Buffer.add_string b ",\"buckets\":[";
  let first = ref true in
  Hist.iter_buckets h ~f:(fun ~lo ~hi ~count ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "[%d,%d,%d]" lo hi count));
  Buffer.add_string b "]}\n"
