(** A calling-context-tree profile of virtual cycles, built from the
    timer samples' source stacks (after Ammons/Ball/Larus; the sampled
    partial-CCT variant the paper's §6 points at).

    Every timer sample walks the source-level call stack — optimized
    frames expanded through their inline maps — and adds the sample
    period's worth of virtual cycles to the node at the end of the path,
    so a node's [self] weight estimates cycles spent exactly in that
    method under that context, and its total (self + descendants)
    estimates inclusive cycles. {!pp_flame} renders the tree as a text
    flamegraph, heaviest subtree first. *)

open Acsi_bytecode

type t

val create : unit -> t

val add_sample : t -> stack:(Ids.Method_id.t * int) list -> weight:int -> unit
(** [stack] is innermost-first, as produced by
    [Acsi_vm.Interp.walk_source_stack]: the head is the executing method
    (its pc is ignored), each later pair a caller with the pc of its
    call site. Empty stacks are ignored. *)

val samples : t -> int
val total_weight : t -> int
val node_count : t -> int

val pp_flame :
  name:(Ids.Method_id.t -> string) ->
  ?min_pct:float ->
  Format.formatter ->
  t ->
  unit
(** Text flamegraph: one line per context node with total and self
    cycles and percent of the profile total; children indented under
    parents, heaviest total first (ties by method id, then call-site pc
    — fully deterministic). Subtrees below [min_pct] percent of the
    total (default 0.0: everything) are pruned. *)
