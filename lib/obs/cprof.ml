open Acsi_bytecode

type node = {
  n_meth : int;
  n_site : int;  (* call-site pc in the parent; -1 at tree roots *)
  mutable n_self : int;
  n_children : (int * int, node) Hashtbl.t;
}

type t = {
  roots : (int * int, node) Hashtbl.t;
  mutable samples : int;
  mutable total : int;
}

let create () = { roots = Hashtbl.create 16; samples = 0; total = 0 }

let child tbl ~meth ~site =
  let key = (meth, site) in
  match Hashtbl.find_opt tbl key with
  | Some n -> n
  | None ->
      let n =
        { n_meth = meth; n_site = site; n_self = 0; n_children = Hashtbl.create 4 }
      in
      Hashtbl.add tbl key n;
      n

let add_sample t ~stack ~weight =
  match List.rev stack with
  | [] -> ()
  | outermost_first ->
      t.samples <- t.samples + 1;
      t.total <- t.total + weight;
      (* Walking outermost-first, each element's node is keyed by its
         method and the call-site pc recorded on the PREVIOUS (parent)
         element — that pc is the site in the parent that calls it. The
         innermost element's own pc (the currently executing
         instruction) keys nothing. *)
      let rec go tbl parent_site = function
        | [] -> ()
        | ((meth : Ids.Method_id.t), pc) :: rest ->
            let n = child tbl ~meth:(meth :> int) ~site:parent_site in
            if rest = [] then n.n_self <- n.n_self + weight
            else go n.n_children pc rest
      in
      go t.roots (-1) outermost_first

let samples t = t.samples
let total_weight t = t.total

let node_count t =
  let rec count tbl =
    Hashtbl.fold (fun _ n acc -> acc + 1 + count n.n_children) tbl 0
  in
  count t.roots

let rec node_total n =
  Hashtbl.fold (fun _ c acc -> acc + node_total c) n.n_children n.n_self

let sorted_children tbl =
  Hashtbl.fold (fun _ n acc -> (node_total n, n) :: acc) tbl []
  |> List.sort (fun (ta, a) (tb, b) ->
         match compare tb ta with
         | 0 -> (
             match compare a.n_meth b.n_meth with
             | 0 -> compare a.n_site b.n_site
             | c -> c)
         | c -> c)

let pp_flame ~name ?(min_pct = 0.0) fmt t =
  let grand = max 1 t.total in
  let pct v = 100.0 *. float_of_int v /. float_of_int grand in
  Format.fprintf fmt "@[<v>%7s %12s %12s  %s@," "total%" "total" "self"
    "calling context";
  let rec render depth (total, n) =
    if pct total >= min_pct then begin
      let label =
        if n.n_site < 0 then name (Ids.Method_id.of_int n.n_meth)
        else
          Printf.sprintf "%s@%d" (name (Ids.Method_id.of_int n.n_meth)) n.n_site
      in
      Format.fprintf fmt "%6.2f%% %12d %12d  %s%s@," (pct total) total n.n_self
        (String.make (2 * depth) ' ')
        label;
      List.iter (render (depth + 1)) (sorted_children n.n_children)
    end
  in
  List.iter (render 0) (sorted_children t.roots);
  Format.fprintf fmt "%d samples, %d cycles attributed, %d context nodes@]"
    t.samples t.total (node_count t)
