type flow_dir = Out | In

type event =
  | Span of { track : string; name : string; t0 : int; t1 : int }
  | Counter of { track : string; name : string; t : int; value : int }
  | Instant of {
      track : string;
      name : string;
      t : int;
      args : (string * string) list;
    }
  | Flow of { track : string; name : string; t : int; id : int; dir : flow_dir }

type t = {
  enabled : bool;
  capacity : int;
  buf : event array;
  mutable start : int;  (* index of the oldest event *)
  mutable len : int;
  mutable dropped : int;
  probe : int;
  charge : int -> unit;
}

let dummy = Instant { track = ""; name = ""; t = 0; args = [] }

let null =
  {
    enabled = false;
    capacity = 0;
    buf = [||];
    start = 0;
    len = 0;
    dropped = 0;
    probe = 0;
    charge = ignore;
  }

let create ?(probe = 0) ?(charge = ignore) ~capacity () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  {
    enabled = true;
    capacity;
    buf = Array.make capacity dummy;
    start = 0;
    len = 0;
    dropped = 0;
    probe;
    charge;
  }

let enabled t = t.enabled
let length t = t.len
let dropped t = t.dropped

let add t e =
  if t.len < t.capacity then begin
    t.buf.((t.start + t.len) mod t.capacity) <- e;
    t.len <- t.len + 1
  end
  else begin
    (* Full: evict the oldest in place. *)
    t.buf.(t.start) <- e;
    t.start <- (t.start + 1) mod t.capacity;
    t.dropped <- t.dropped + 1
  end;
  if t.probe > 0 then t.charge t.probe

let span t ~track ~name ~t0 ~t1 =
  if t.enabled && t1 > t0 then add t (Span { track; name; t0; t1 })

let counter t ~track ~name ~t:time ~value =
  if t.enabled then add t (Counter { track; name; t = time; value })

let instant t ~track ~name ~t:time ?(args = []) () =
  if t.enabled then add t (Instant { track; name; t = time; args })

let flow t ~track ~name ~t:time ~id ~dir =
  if t.enabled then add t (Flow { track; name; t = time; id; dir })

let iter t ~f =
  for i = 0 to t.len - 1 do
    f t.buf.((t.start + i) mod t.capacity)
  done
