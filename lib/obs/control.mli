(** Per-run observability configuration and the live bundle of stores.

    Everything defaults to off; {!disabled} is allocation-free and every
    probe through it is a branch on a [false] flag, so untraced runs —
    including all goldens — are byte-identical to pre-observability
    builds. *)

type config = {
  trace : bool;  (** record tracer spans/counters/instants *)
  provenance : bool;  (** record oracle decision provenance *)
  cprof : bool;  (** build the CCT profile from timer samples *)
  capacity : int;  (** tracer ring capacity (events) *)
  probe_on_clock : bool;
      (** charge [Cost.probe] virtual cycles to the clock per recorded
          event, modelling a paid software probe; never charged to
          [Accounting], so span/accounting reconciliation is unaffected *)
}

val off : config
(** All faces disabled; [capacity = 65536]. *)

val enabled : config -> bool
(** Any face on. *)

type t = {
  tracer : Tracer.t;
  prov : Provenance.t option;
  cprof : Cprof.t option;
}

val disabled : t

val create :
  config -> probe:int -> charge:(int -> unit) -> now:(unit -> int) -> t
(** [probe] is the per-event probe cost from the run's cost model
    (applied only when [probe_on_clock]); [charge] advances the virtual
    clock; [now] reads it (stamps provenance records). *)
