(** Renderers for a {!Tracer} buffer: Chrome trace-event JSON (load in
    Perfetto / [chrome://tracing]), a line-per-event JSONL log, and the
    Figure-6-style per-component overhead breakdown.

    All output is deterministic: events render in buffer (emission)
    order and Perfetto thread ids are assigned to tracks in first-seen
    order. Timestamps are virtual cycles (the exporter reports them as
    microseconds because the trace-event format demands a unit; 1 cycle
    = 1 "us"). *)

val to_chrome_json : Buffer.t -> Tracer.t -> unit
(** A complete [{"traceEvents": [...]}] document: one ["M"] thread-name
    metadata event per track, then ["X"] complete events for spans,
    ["C"] counter events, ["i"] instant events and ["s"]/["f"] flow
    arrows ({!Tracer.Flow}; the two halves share their numeric [id]) in
    emission order. All events share [pid 1]; each track gets its own
    [tid]. *)

val to_jsonl : Buffer.t -> Tracer.t -> unit
(** One self-describing JSON object per line, in emission order:
    [{"ev":"span","track":...,"name":...,"t0":...,"t1":...,"dur":...}],
    [{"ev":"counter",...,"t":...,"value":...}],
    [{"ev":"instant",...,"t":...,"args":{...}}],
    [{"ev":"flow-out"|"flow-in",...,"t":...,"id":...}]. *)

val track_totals : Tracer.t -> (string * int) list
(** Summed span durations per track, tracks in first-seen order.
    Counters and instants contribute nothing. When the buffer has not
    dropped events, a track instrumented from [Accounting.charge]
    reconciles exactly with its [Accounting] total. *)

val pp_breakdown :
  total:int -> Format.formatter -> (string * int) list -> unit
(** Figure-6-style table: one line per (component, cycles) row with its
    percentage of [total] (the run's total virtual cycles), then the
    summed overhead and percentage. *)

(** {2 Fleet-telemetry text formats}

    OpenMetrics and JSONL renderers for {!Timeseries} and {!Hist} —
    the [acsi-run metrics] export surface. Timestamps are virtual
    cycles (the OpenMetrics timestamp slot carries cycles, same license
    as 1 cycle = 1 "us" above); [labels] render in the given order, so
    all output is byte-deterministic. *)

val series_openmetrics :
  Buffer.t -> prefix:string -> ?labels:(string * string) list ->
  Timeseries.t -> unit
(** One gauge family per column, named [prefix ^ column]: a [# TYPE]
    line, then one [metric{labels} value timestamp] sample line per
    row. *)

val hist_openmetrics :
  Buffer.t -> name:string -> ?labels:(string * string) list -> Hist.t -> unit
(** One OpenMetrics histogram family: cumulative [_bucket] lines with
    [le] set to each non-empty bucket's inclusive upper edge (plus the
    [+Inf] bucket), then [_sum] and [_count]. *)

val series_jsonl :
  Buffer.t -> name:string -> ?labels:(string * string) list ->
  Timeseries.t -> unit
(** One [{"ev":"sample","series":...,"t":...,<column>:<value>...}] line
    per row. *)

val hist_jsonl :
  Buffer.t -> name:string -> ?labels:(string * string) list -> Hist.t -> unit
(** A single [{"ev":"hist",...}] line carrying exact count/sum/min/max,
    p50/p90/p99 bucket quantiles and the non-empty [[lo,hi,count]]
    buckets. *)
