(** Renderers for a {!Tracer} buffer: Chrome trace-event JSON (load in
    Perfetto / [chrome://tracing]), a line-per-event JSONL log, and the
    Figure-6-style per-component overhead breakdown.

    All output is deterministic: events render in buffer (emission)
    order and Perfetto thread ids are assigned to tracks in first-seen
    order. Timestamps are virtual cycles (the exporter reports them as
    microseconds because the trace-event format demands a unit; 1 cycle
    = 1 "us"). *)

val to_chrome_json : Buffer.t -> Tracer.t -> unit
(** A complete [{"traceEvents": [...]}] document: one ["M"] thread-name
    metadata event per track, then ["X"] complete events for spans,
    ["C"] counter events and ["i"] instant events in emission order.
    All events share [pid 1]; each track gets its own [tid]. *)

val to_jsonl : Buffer.t -> Tracer.t -> unit
(** One self-describing JSON object per line, in emission order:
    [{"ev":"span","track":...,"name":...,"t0":...,"t1":...,"dur":...}],
    [{"ev":"counter",...,"t":...,"value":...}],
    [{"ev":"instant",...,"t":...,"args":{...}}]. *)

val track_totals : Tracer.t -> (string * int) list
(** Summed span durations per track, tracks in first-seen order.
    Counters and instants contribute nothing. When the buffer has not
    dropped events, a track instrumented from [Accounting.charge]
    reconciles exactly with its [Accounting] total. *)

val pp_breakdown :
  total:int -> Format.formatter -> (string * int) list -> unit
(** Figure-6-style table: one line per (component, cycles) row with its
    percentage of [total] (the run's total virtual cycles), then the
    summed overhead and percentage. *)
