exception Error of string

let error m pc fmt =
  Format.kasprintf
    (fun msg ->
      raise (Error (Printf.sprintf "%s:%d: %s" m.Meth.name pc msg)))
    fmt

(* (pops, pushes) of an instruction, resolving call signatures against the
   program. *)
let effect_of p m pc instr =
  match (instr : Instr.t) with
  | Const _ | Const_null | Get_global _ | New _ -> (0, 1)
  | Load i ->
      if i < 0 || i >= m.Meth.max_locals then
        error m pc "load of local %d outside max_locals %d" i m.max_locals;
      (0, 1)
  | Store i ->
      if i < 0 || i >= m.Meth.max_locals then
        error m pc "store to local %d outside max_locals %d" i m.max_locals;
      (1, 0)
  | Dup -> (1, 2)
  | Pop | Put_global _ | Print_int -> (1, 0)
  | Swap -> (2, 2)
  | Binop _ | Cmp _ -> (2, 1)
  | Neg | Not | Array_new | Array_len | Get_field _ | Instance_of _ -> (1, 1)
  | Jump _ | Nop | Return_void -> (0, 0)
  | Guard_method g ->
      let callee = Program.meth p g.Instr.expected in
      if callee.Meth.arity <> g.argc then
        error m pc "guard arity %d but expected target %s has arity %d"
          g.argc callee.name callee.arity;
      (0, 0)
  | Jump_if _ | Jump_ifnot _ -> (1, 0)
  | Put_field _ -> (2, 0)
  | Array_get -> (2, 1)
  | Array_set -> (3, 0)
  | Return -> (1, 0)
  | Call_static mid ->
      let callee = Program.meth p mid in
      (match callee.Meth.kind with
      | Meth.Static -> ()
      | Meth.Instance ->
          error m pc "call_static targets instance method %s" callee.name);
      (callee.arity, if callee.returns then 1 else 0)
  | Call_direct mid ->
      let callee = Program.meth p mid in
      (match callee.Meth.kind with
      | Meth.Instance -> ()
      | Meth.Static ->
          error m pc "call_direct targets static method %s" callee.name);
      (callee.arity + 1, if callee.returns then 1 else 0)
  | Call_virtual (sel, argc) -> (
      match Program.implementations p sel with
      | [] ->
          error m pc "virtual call on selector %s with no implementation"
            (Program.selector_name p sel)
      | (first :: _ as impls) ->
          let first_m = Program.meth p first in
          List.iter
            (fun mid ->
              let callee = Program.meth p mid in
              (match callee.Meth.kind with
              | Meth.Instance -> ()
              | Meth.Static ->
                  error m pc "virtual call reaches static method %s"
                    callee.name);
              if callee.arity <> argc then
                error m pc "virtual call arity %d but %s expects %d" argc
                  callee.name callee.arity;
              if Bool.not (Bool.equal callee.returns first_m.Meth.returns)
              then
                error m pc
                  "virtual call targets disagree on returning a value (%s)"
                  callee.name)
            impls;
          (argc + 1, if first_m.Meth.returns then 1 else 0))

let depth_map p m =
  let body = m.Meth.body in
  let len = Array.length body in
  if len = 0 then error m 0 "empty body";
  (* The calling convention stores arguments (and the receiver, for
     instance methods) into the leading locals before entry. *)
  if Meth.param_slots m > m.Meth.max_locals then
    error m 0 "%d parameter slots do not fit in max_locals %d"
      (Meth.param_slots m) m.max_locals;
  (* Range-check every branch target up front, including targets in
     unreachable code: downstream transformations (the inline expander)
     index per-pc tables by them. *)
  Array.iteri
    (fun pc instr ->
      List.iter
        (fun target ->
          if target < 0 || target >= len then
            error m pc "branch target %d outside body of length %d" target len)
        (Instr.jump_targets instr))
    body;
  let depth_in = Array.make len (-1) in
  let max_depth = ref 0 in
  let worklist = Queue.create () in
  let propagate pc depth =
    if pc < 0 || pc >= len then error m pc "jump target out of range";
    if depth_in.(pc) = -1 then begin
      depth_in.(pc) <- depth;
      Queue.add pc worklist
    end
    else if depth_in.(pc) <> depth then
      error m pc "inconsistent stack depth at join: %d vs %d" depth_in.(pc)
        depth
  in
  propagate 0 0;
  while not (Queue.is_empty worklist) do
    let pc = Queue.pop worklist in
    let depth = depth_in.(pc) in
    let instr = body.(pc) in
    let pops, pushes = effect_of p m pc instr in
    if depth < pops then
      error m pc "stack underflow: depth %d, instruction pops %d" depth pops;
    let depth' = depth - pops + pushes in
    if depth' > !max_depth then max_depth := depth';
    (match instr with
    | Instr.Guard_method g ->
        if depth < g.argc + 1 then
          error m pc "guard peeks below the stack (depth %d, argc %d)" depth
            g.argc
    | Instr.Return ->
        if depth <> 1 then
          error m pc "return with stack depth %d (must be exactly 1)" depth;
        if not m.Meth.returns then error m pc "return in a void method"
    | Instr.Return_void ->
        if depth <> 0 then
          error m pc "return_void with stack depth %d (must be 0)" depth;
        if m.Meth.returns then
          error m pc "return_void in a value-returning method"
    | Instr.Const _ | Instr.Const_null | Instr.Load _ | Instr.Store _
    | Instr.Dup | Instr.Pop | Instr.Swap | Instr.Binop _ | Instr.Neg
    | Instr.Not | Instr.Cmp _ | Instr.Jump _ | Instr.Jump_if _
    | Instr.Jump_ifnot _ | Instr.New _ | Instr.Get_field _
    | Instr.Put_field _ | Instr.Get_global _ | Instr.Put_global _
    | Instr.Array_new | Instr.Array_get | Instr.Array_set | Instr.Array_len
    | Instr.Call_static _ | Instr.Call_virtual _ | Instr.Call_direct _
    | Instr.Instance_of _ | Instr.Print_int | Instr.Nop ->
        ());
    let falls_through =
      match instr with
      | Instr.Jump _ | Instr.Return | Instr.Return_void -> false
      | Instr.Const _ | Instr.Const_null | Instr.Load _ | Instr.Store _
      | Instr.Dup | Instr.Pop | Instr.Swap | Instr.Binop _ | Instr.Neg
      | Instr.Not | Instr.Cmp _ | Instr.Jump_if _ | Instr.Jump_ifnot _
      | Instr.New _ | Instr.Get_field _ | Instr.Put_field _
      | Instr.Get_global _ | Instr.Put_global _ | Instr.Array_new
      | Instr.Array_get | Instr.Array_set | Instr.Array_len
      | Instr.Call_static _ | Instr.Call_virtual _ | Instr.Call_direct _
      | Instr.Instance_of _ | Instr.Guard_method _ | Instr.Print_int
      | Instr.Nop ->
          true
    in
    if falls_through then begin
      if pc + 1 >= len then error m pc "execution falls off the end of body";
      propagate (pc + 1) depth'
    end;
    List.iter (fun target -> propagate target depth') (Instr.jump_targets instr)
  done;
  (depth_in, !max_depth)

let entry_depths p m = fst (depth_map p m)

let meth p m =
  let _, max_depth = depth_map p m in
  m.Meth.max_stack <- max_depth

let program p = Array.iter (meth p) (Program.methods p)
