(** Bytecode verifier.

    Checks the structural well-formedness that the interpreter and the JIT
    inliner rely on, and computes each method's [max_stack]:

    - jump targets stay within the method body;
    - locals stay within [max_locals];
    - operand-stack depth is consistent at every join point and never
      negative;
    - [Return] executes with exactly the result on the stack and
      [Return_void] with an empty stack (this is what makes rewriting
      returns into jumps during inline expansion sound);
    - call arities and result kinds agree with callee signatures, including
      agreement across every CHA target of a virtual call;
    - parameter slots fit within [max_locals] (the calling convention
      stores arguments into the leading locals, so a method cannot
      declare fewer locals than it has parameters);
    - execution cannot fall off the end of the body. *)

exception Error of string
(** Raised with a message formatted as [method:pc: message]. *)

val effect_of : Program.t -> Meth.t -> int -> Instr.t -> int * int
(** [(pops, pushes)] of one instruction, resolving call signatures
    against the program and checking local indexes, call kinds/arities
    and guard arities. This is the transfer-function table shared with
    the typed verifier in [Acsi_analysis] — the depth verifier below
    and the abstract interpreter both drive their stacks off it, so the
    two can never disagree about an instruction's shape. Raises
    {!Error}. *)

val meth : Program.t -> Meth.t -> unit
(** Verify one method and set its [max_stack]. Raises {!Error}. *)

val entry_depths : Program.t -> Meth.t -> int array
(** Per-pc operand-stack depth on entry to each instruction, [-1] for
    unreachable code; runs the same verification worklist as {!meth}
    (and raises {!Error} on the same inputs). The VM's on-stack
    replacement uses this to refuse transfers onto a pc whose depth
    differs from the suspended frame's — the peephole optimizer can
    leave a source map entry on an instruction with a different entry
    depth than the source pc had (constant folding keeps the
    consumer's entry). *)

val program : Program.t -> unit
(** Verify every method of a sealed program. Raises {!Error}. *)
