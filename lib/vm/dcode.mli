(** Pre-decoded execution form of a {!Code.t}.

    Built once at code-install time so the interpreter's inner loop pays
    neither per-instruction tier resolution (the per-dispatch cost is
    resolved into {!t.icost}) nor repeated decoding. A peephole pass fuses
    common straight-line sequences ([load;load;binop],
    [load;const;cmp;jump_ifnot], ...) into superinstructions.

    Cost neutrality is a hard invariant: executing the decoded stream
    charges exactly the virtual cycles, fires hooks at exactly the cycle
    counts, and produces exactly the state the naive instruction-at-a-time
    interpretation of the source [Code.t] would — superinstructions only
    collapse interpreter {e dispatch} overhead, which is real time, not
    virtual time. The decoded stream is indexed 1:1 by source pc (fused
    ops are an optional per-slot fast path), so frame pcs remain source
    pcs: jumps into fused regions, inline maps, and OSR need no
    translation. *)

open Acsi_bytecode

type op =
  | Const of Value.t  (** covers [Const] and [Const_null] *)
  | Load of int
  | Store of int
  | Dup
  | Pop
  | Swap
  | Binop of Instr.binop
  | Neg
  | Not
  | Cmp of Instr.cmp
  | Jump of int
  | Jump_if of int
  | Jump_ifnot of int
  | New of Ids.Class_id.t
  | Get_field of int
  | Put_field of int
  | Get_global of int
  | Put_global of int
  | Array_new
  | Array_get
  | Array_set
  | Array_len
  | Call of Ids.Method_id.t  (** covers [Call_static] and [Call_direct] *)
  | Call_virtual of Ids.Selector.t * int
  | Return
  | Return_void
  | Instance_of of Ids.Class_id.t
  | Guard of Instr.guard
  | Print_int
  | Nop
  | Load2_binop of int * int * Instr.binop
  | Load_const_binop of int * int * Instr.binop
  | Load2_binop_store of int * int * Instr.binop * int
  | Load_const_binop_store of int * int * Instr.binop * int
  | Load_getfield_store of int * int * int
  | Load2_cmp_jumpifnot of int * int * Instr.cmp * int
  | Load_const_cmp_jumpifnot of int * Value.t * Instr.cmp * int
  | Load_store of int * int
  | Const_store of Value.t * int
  | Load_getfield of int * int
  | Load2 of int * int
  | Cmp_jumpifnot of Instr.cmp * int
  | Cmp_jumpif of Instr.cmp * int
  | Binop_store of Instr.binop * int
  | Const_binop of int * Instr.binop
  | Load_jumpifnot of int * int
  | Store_load of int * int
  | Store_store of int * int
  | Store_jump of int * int
  | Getfield_load of int * int
  | Load_binop of int * Instr.binop
  | Load_cmp of int * Instr.cmp
  | Load_arrayget of int
  | Binop_const of Instr.binop * Value.t
  | Binop_binop of Instr.binop * Instr.binop
  | Const_cmp of Value.t * Instr.cmp
  | Arrayget_store of int

type t = {
  ops : op array;  (** same length as the source [Code.instrs] *)
  icost : int;  (** per-instruction dispatch cost of this code's tier *)
}

val width : op -> int
(** Number of source instructions the op covers (1 for non-fused ops). *)

val of_code : ?fuse:bool -> Cost.t -> Code.t -> t
(** Decode [code]. [fuse:false] disables the superinstruction pass
    (used by the differential tests; execution results are identical
    either way). *)

val fused_count : t -> int
(** Number of slots holding a superinstruction (for tests/inspection). *)
