(** The virtual-cycle cost model.

    All performance numbers in this reproduction are deterministic functions
    of these constants. The absolute values are synthetic; what matters is
    their relative structure, chosen to echo the real machine the paper
    measured on (a Pentium-3 under Jikes RVM):

    - optimized code runs several times faster per bytecode than baseline
      code (Jikes' opt-vs-baseline gap);
    - a call costs tens of instruction-equivalents (frame setup, spill,
      return), virtual dispatch adds a table load, and an inlined call costs
      only its guard;
    - optimizing compilation costs hundreds of cycles per bytecode of
      (post-inlining) code — this is what makes over-aggressive inlining
      expensive — while baseline compilation is an order of magnitude
      cheaper per bytecode;
    - machine code is a constant factor larger than bytecode, bigger under
      the optimizing compiler than under baseline. *)

type t = {
  baseline_instr : int;  (** cycles per instruction in baseline code *)
  opt_instr : int;  (** cycles per instruction in optimized code *)
  call : int;
      (** call + return overhead when the callee runs baseline code *)
  opt_call : int;
      (** call + return overhead when the callee runs optimized code (an
          optimizing compiler emits a far cheaper prologue) *)
  virtual_dispatch : int;  (** additional cost of a virtual dispatch *)
  guard : int;  (** cost of an inline guard (method test) *)
  alloc : int;  (** object allocation *)
  alloc_array_word : int;  (** per-element cost of array allocation *)
  baseline_compile_unit : int;  (** baseline compile cycles per bytecode *)
  baseline_compile_fixed : int;
  opt_compile_unit : int;  (** opt compile cycles per (expanded) bytecode *)
  opt_compile_fixed : int;
  baseline_bytes_per_unit : int;  (** machine-code bytes per bytecode *)
  opt_bytes_per_unit : int;
  method_sample : int;  (** cost of one method-listener sample *)
  trace_sample_frame : int;  (** trace-listener cost per stack frame walked *)
  organizer_per_event : int;  (** DCG organizer cost per buffered sample *)
  ai_organizer_per_trace : int;  (** AI organizer cost per live trace *)
  decay_per_trace : int;  (** decay organizer cost per live trace *)
  controller_per_event : int;  (** controller cost per organizer event *)
  probe : int;
      (** cost of one software tracing probe (an observability event
          record). Charged to the virtual clock only when the run opts
          into an on-clock probe model
          ([Acsi_obs.Control.probe_on_clock]); never charged to the
          per-component accounting, so tracing's own cost is visible in
          total time without perturbing the Figure-6 breakdown. *)
  deopt_frame : int;
      (** cost per source frame reconstructed (or consumed) by an
          on-stack transfer between tiers — charged by the AOS for each
          frame a {!Interp.deopt_top_frame}/{!Interp.osr_into} plan
          touches, modeling frame-state extraction and repack. *)
}

val default : t
