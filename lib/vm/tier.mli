(** The closure ("native") second execution tier.

    Compiles a method's installed {!Code.t} — via its pre-decoded,
    superinstruction-fused {!Dcode} form — into direct-threaded chains of
    OCaml closures, the technique of the OCamlJIT line of work: one entry
    closure per source pc, straight-line runs linked by directly captured
    successor closures, control transfers re-entering through the target's
    entry closure. Frames, operand layout, the virtual clock, hooks and
    preemption windows are all shared with {!Interp}; the tier is an exact
    host-speed re-encoding of the interpreter's observable semantics.
    Window accounting is *prepaid* per straight-line run using the same
    inequality the interpreter's own fused fast paths use, and any run
    that no longer fits the window is handed back to {!Interp.step}, so
    cycle counts, hook firing points, counters and output stay
    bit-identical across tiers (enforced by the differential tests).

    Installation is gated by the AOS ({!Acsi_aos}): only methods whose
    optimized code passes [Jit_check] are compiled to this tier, so the
    unsafe array accesses the closures share with the interpreter remain
    bounded by the verifier's guarantees. *)

open Acsi_bytecode

val compile : Interp.t -> Code.t -> Interp.nfn array * int array
(** [compile t code] builds the closure-tier entry points for [code] (one
    per source pc) plus the operand-stack entry depth per pc (from
    {!Verify.entry_depths}, used to cross-check OSR transfers onto
    compiled entry points). Does not install anything. *)

val install : Interp.t -> Ids.Method_id.t -> Code.t -> unit
(** Compile [code] — which must be what {!Interp.install_code} most
    recently installed for [mid] — and activate it via
    {!Interp.install_native}. New invocations of [mid] then run on the
    closure tier; frames already live keep their current tier. *)

(** {2 Shared baseline-compile cache statistics}

    The MRU (program, cost, fuse) cache that lets concurrent VMs of the
    same program share baseline closure code is process-global; so are
    its traffic counters. They are host-side observability only — they
    never feed the virtual clock — and under parallel sweeps the
    hit/miss split depends on domain interleaving, so they must not be
    folded into per-run {!Metrics}-style determinism-checked output. *)

type cache_stats = { hits : int; misses : int; evictions : int }

val cache_stats : unit -> cache_stats
val reset_cache_stats : unit -> unit
