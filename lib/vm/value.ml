open Acsi_bytecode

type t =
  | Int of int
  | Null
  | Obj of obj
  | Arr of t array

and obj = {
  cls : Ids.Class_id.t;
  fields : t array;
}

let zero = Int 0
let one = Int 1

(* Shared immutable cells for common integers, so that the interpreter's
   constant pushes and arithmetic results do not allocate. [Int] values
   are compared structurally ({!equal_cmp}), never by identity, so sharing
   is unobservable. *)
let small_lo = -128
let small_hi = 1024
let small = Array.init (small_hi - small_lo) (fun i -> Int (i + small_lo))

let[@inline] of_int n =
  if n >= small_lo && n < small_hi then Array.unsafe_get small (n - small_lo)
  else Int n

let[@inline] of_bool b = if b then one else zero

let alloc program cid =
  let cls = Program.clazz program cid in
  Obj { cls = cid; fields = Array.make (Clazz.field_count cls) zero }

let[@inline] equal_cmp a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Null, Null -> true
  | Obj x, Obj y -> x == y
  | Arr x, Arr y -> x == y
  | (Int _ | Null | Obj _ | Arr _), _ -> false

let[@inline] truthy = function
  | Int 0 | Null -> false
  | Int _ | Obj _ | Arr _ -> true

let rec pp fmt = function
  | Int n -> Format.fprintf fmt "%d" n
  | Null -> Format.fprintf fmt "null"
  | Obj o -> Format.fprintf fmt "obj<%a>" Ids.Class_id.pp o.cls
  | Arr a ->
      Format.fprintf fmt "[|";
      Array.iteri
        (fun i v ->
          if i > 0 then Format.fprintf fmt "; ";
          if i < 8 then pp fmt v else if i = 8 then Format.fprintf fmt "...")
        a;
      Format.fprintf fmt "|]"
