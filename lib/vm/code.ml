open Acsi_bytecode

type tier = Baseline | Optimized

type src_entry = {
  src_meth : Ids.Method_id.t;
  src_pc : int;
  parents : (Ids.Method_id.t * int) list;
}

type t = {
  meth : Ids.Method_id.t;
  tier : tier;
  instrs : Instr.t array;
  max_locals : int;
  max_stack : int;
  src : src_entry array option;
  code_bytes : int;
  assumptions : (Ids.Selector.t * Ids.Method_id.t) list;
}

let baseline (cost : Cost.t) (m : Meth.t) =
  {
    meth = m.Meth.id;
    tier = Baseline;
    instrs = m.Meth.body;
    max_locals = m.Meth.max_locals;
    max_stack = m.Meth.max_stack;
    src = None;
    code_bytes = Array.length m.Meth.body * cost.Cost.baseline_bytes_per_unit;
    assumptions = [];
  }

let source_at code ~pc =
  match code.src with
  | None -> ((code.meth, pc), [])
  | Some entries ->
      let e = entries.(pc) in
      ((e.src_meth, e.src_pc), e.parents)

let pp fmt code =
  let tier = match code.tier with Baseline -> "base" | Optimized -> "opt" in
  Format.fprintf fmt "@[<v>code %a [%s] %d instrs %d bytes@," Ids.Method_id.pp
    code.meth tier (Array.length code.instrs) code.code_bytes;
  Array.iteri
    (fun i ins -> Format.fprintf fmt "%4d: %a@," i Instr.pp ins)
    code.instrs;
  Format.fprintf fmt "@]"
