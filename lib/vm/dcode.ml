open Acsi_bytecode

(* The decoded stream is indexed 1:1 by source pc: the slot for every pc
   holds an executable op, and a superinstruction at [pc] is an *optional
   fast path* covering [width] source instructions — the covered slots
   keep their own single-instruction ops, so jumps into the middle of a
   fused region, OSR transfers, and partial execution near a timer event
   all work without any pc remapping. *)

type op =
  (* one source instruction each *)
  | Const of Value.t
  | Load of int
  | Store of int
  | Dup
  | Pop
  | Swap
  | Binop of Instr.binop
  | Neg
  | Not
  | Cmp of Instr.cmp
  | Jump of int
  | Jump_if of int
  | Jump_ifnot of int
  | New of Ids.Class_id.t
  | Get_field of int
  | Put_field of int
  | Get_global of int
  | Put_global of int
  | Array_new
  | Array_get
  | Array_set
  | Array_len
  | Call of Ids.Method_id.t  (* Call_static and Call_direct *)
  | Call_virtual of Ids.Selector.t * int
  | Return
  | Return_void
  | Instance_of of Ids.Class_id.t
  | Guard of Instr.guard
  | Print_int
  | Nop
  (* superinstructions; the first component is always reconstructible so
     the interpreter can fall back to single-step execution when a timer
     event lies inside the fused window *)
  | Load2_binop of int * int * Instr.binop  (* load i; load j; binop *)
  | Load_const_binop of int * int * Instr.binop  (* load i; const n; binop *)
  | Load2_binop_store of int * int * Instr.binop * int
      (* load i; load j; binop; store d *)
  | Load_const_binop_store of int * int * Instr.binop * int
      (* load i; const n; binop; store d *)
  | Load_getfield_store of int * int * int  (* load i; get_field f; store d *)
  | Load2_cmp_jumpifnot of int * int * Instr.cmp * int
      (* load i; load j; cmp; jump_ifnot target *)
  | Load_const_cmp_jumpifnot of int * Value.t * Instr.cmp * int
      (* load i; const n; cmp; jump_ifnot target *)
  | Load_store of int * int  (* load i; store j *)
  | Const_store of Value.t * int  (* const n; store j *)
  | Load_getfield of int * int  (* load i; get_field f *)
  | Load2 of int * int  (* load i; load j *)
  | Cmp_jumpifnot of Instr.cmp * int  (* cmp; jump_ifnot target *)
  | Cmp_jumpif of Instr.cmp * int  (* cmp; jump_if target *)
  | Binop_store of Instr.binop * int  (* binop; store j *)
  | Const_binop of int * Instr.binop  (* const n; binop *)
  | Load_jumpifnot of int * int  (* load i; jump_ifnot target *)
  | Store_load of int * int  (* store i; load j *)
  | Store_store of int * int  (* store i; store j *)
  | Store_jump of int * int  (* store i; jump target *)
  | Getfield_load of int * int  (* get_field f; load j *)
  | Load_binop of int * Instr.binop  (* load i; binop *)
  | Load_cmp of int * Instr.cmp  (* load i; cmp *)
  | Load_arrayget of int  (* load i; array_get *)
  | Binop_const of Instr.binop * Value.t  (* binop; const n *)
  | Binop_binop of Instr.binop * Instr.binop  (* binop; binop *)
  | Const_cmp of Value.t * Instr.cmp  (* const n; cmp *)
  | Arrayget_store of int  (* array_get; store j *)

type t = {
  ops : op array;  (* same length as the source [Code.instrs] *)
  icost : int;  (* per-instruction dispatch cost of this code's tier *)
}

let width = function
  | Const _ | Load _ | Store _ | Dup | Pop | Swap | Binop _ | Neg | Not
  | Cmp _ | Jump _ | Jump_if _ | Jump_ifnot _ | New _ | Get_field _
  | Put_field _ | Get_global _ | Put_global _ | Array_new | Array_get
  | Array_set | Array_len | Call _ | Call_virtual _ | Return | Return_void
  | Instance_of _ | Guard _ | Print_int | Nop ->
      1
  | Load_store _ | Const_store _ | Load_getfield _ | Load2 _
  | Cmp_jumpifnot _ | Cmp_jumpif _ | Binop_store _ | Const_binop _
  | Load_jumpifnot _ | Store_load _ | Store_store _ | Store_jump _
  | Getfield_load _ | Load_binop _ | Load_cmp _ | Load_arrayget _
  | Binop_const _ | Binop_binop _ | Const_cmp _ | Arrayget_store _ ->
      2
  | Load2_binop _ | Load_const_binop _ | Load_getfield_store _ -> 3
  | Load2_cmp_jumpifnot _ | Load_const_cmp_jumpifnot _ | Load2_binop_store _
  | Load_const_binop_store _ ->
      4

let plain (i : Instr.t) : op =
  match i with
  | Instr.Const n -> Const (Value.of_int n)
  | Instr.Const_null -> Const Value.Null
  | Instr.Load i -> Load i
  | Instr.Store i -> Store i
  | Instr.Dup -> Dup
  | Instr.Pop -> Pop
  | Instr.Swap -> Swap
  | Instr.Binop op -> Binop op
  | Instr.Neg -> Neg
  | Instr.Not -> Not
  | Instr.Cmp c -> Cmp c
  | Instr.Jump t -> Jump t
  | Instr.Jump_if t -> Jump_if t
  | Instr.Jump_ifnot t -> Jump_ifnot t
  | Instr.New c -> New c
  | Instr.Get_field i -> Get_field i
  | Instr.Put_field i -> Put_field i
  | Instr.Get_global i -> Get_global i
  | Instr.Put_global i -> Put_global i
  | Instr.Array_new -> Array_new
  | Instr.Array_get -> Array_get
  | Instr.Array_set -> Array_set
  | Instr.Array_len -> Array_len
  | Instr.Call_static m | Instr.Call_direct m -> Call m
  | Instr.Call_virtual (s, n) -> Call_virtual (s, n)
  | Instr.Return -> Return
  | Instr.Return_void -> Return_void
  | Instr.Instance_of c -> Instance_of c
  | Instr.Guard_method g -> Guard g
  | Instr.Print_int -> Print_int
  | Instr.Nop -> Nop

(* Peephole superinstruction selection at [pc]; longest pattern wins. The
   components are all plain-cost instructions (no calls, allocations or
   guards), so a fused op charges exactly [width * icost] — cost-neutral
   by construction. *)
let fuse_at instrs pc n =
  let at k = if pc + k < n then Some instrs.(pc + k) else None in
  match (instrs.(pc), at 1) with
  | Instr.Load i, Some (Instr.Load j) -> (
      match at 2 with
      | Some (Instr.Binop op) -> (
          match at 3 with
          | Some (Instr.Store d) -> Some (Load2_binop_store (i, j, op, d))
          | _ -> Some (Load2_binop (i, j, op)))
      | Some (Instr.Cmp c) -> (
          match at 3 with
          | Some (Instr.Jump_ifnot t) -> Some (Load2_cmp_jumpifnot (i, j, c, t))
          | _ -> Some (Load2 (i, j)))
      | _ -> Some (Load2 (i, j)))
  | Instr.Load i, Some (Instr.Const k) -> (
      match at 2 with
      | Some (Instr.Binop op) -> (
          match at 3 with
          | Some (Instr.Store d) -> Some (Load_const_binop_store (i, k, op, d))
          | _ -> Some (Load_const_binop (i, k, op)))
      | Some (Instr.Cmp c) -> (
          match at 3 with
          | Some (Instr.Jump_ifnot t) ->
              Some (Load_const_cmp_jumpifnot (i, Value.of_int k, c, t))
          | _ -> None)
      | _ -> None)
  | Instr.Load i, Some (Instr.Store j) -> Some (Load_store (i, j))
  | Instr.Load i, Some (Instr.Get_field f) -> (
      match at 2 with
      | Some (Instr.Store d) -> Some (Load_getfield_store (i, f, d))
      | _ -> Some (Load_getfield (i, f)))
  | Instr.Load i, Some (Instr.Jump_ifnot t) -> Some (Load_jumpifnot (i, t))
  | Instr.Load i, Some (Instr.Binop op) -> Some (Load_binop (i, op))
  | Instr.Load i, Some (Instr.Cmp c) -> Some (Load_cmp (i, c))
  | Instr.Load i, Some Instr.Array_get -> Some (Load_arrayget i)
  | Instr.Store i, Some (Instr.Load j) -> Some (Store_load (i, j))
  | Instr.Store i, Some (Instr.Store j) -> Some (Store_store (i, j))
  | Instr.Store i, Some (Instr.Jump t) -> Some (Store_jump (i, t))
  | Instr.Get_field f, Some (Instr.Load j) -> Some (Getfield_load (f, j))
  | Instr.Const k, Some (Instr.Store j) ->
      Some (Const_store (Value.of_int k, j))
  | Instr.Const k, Some (Instr.Binop op) -> Some (Const_binop (k, op))
  | Instr.Const k, Some (Instr.Cmp c) -> Some (Const_cmp (Value.of_int k, c))
  | Instr.Cmp c, Some (Instr.Jump_ifnot t) -> Some (Cmp_jumpifnot (c, t))
  | Instr.Cmp c, Some (Instr.Jump_if t) -> Some (Cmp_jumpif (c, t))
  | Instr.Binop op, Some (Instr.Store j) -> Some (Binop_store (op, j))
  | Instr.Binop op, Some (Instr.Const n) ->
      Some (Binop_const (op, Value.of_int n))
  | Instr.Binop op1, Some (Instr.Binop op2) -> Some (Binop_binop (op1, op2))
  | Instr.Array_get, Some (Instr.Store j) -> Some (Arrayget_store j)
  | _ -> None

let of_code ?(fuse = true) (cost : Cost.t) (code : Code.t) =
  let icost =
    match code.Code.tier with
    | Code.Baseline -> cost.Cost.baseline_instr
    | Code.Optimized -> cost.Cost.opt_instr
  in
  let instrs = code.Code.instrs in
  let n = Array.length instrs in
  let ops = Array.init n (fun i -> plain instrs.(i)) in
  if fuse then
    for pc = 0 to n - 1 do
      match fuse_at instrs pc n with
      | Some op -> ops.(pc) <- op
      | None -> ()
    done;
  { ops; icost }

let fused_count t =
  Array.fold_left (fun acc op -> if width op > 1 then acc + 1 else acc) 0 t.ops
