type t = {
  baseline_instr : int;
  opt_instr : int;
  call : int;
  opt_call : int;
  virtual_dispatch : int;
  guard : int;
  alloc : int;
  alloc_array_word : int;
  baseline_compile_unit : int;
  baseline_compile_fixed : int;
  opt_compile_unit : int;
  opt_compile_fixed : int;
  baseline_bytes_per_unit : int;
  opt_bytes_per_unit : int;
  method_sample : int;
  trace_sample_frame : int;
  organizer_per_event : int;
  ai_organizer_per_trace : int;
  decay_per_trace : int;
  controller_per_event : int;
  probe : int;
  deopt_frame : int;
}

let default =
  {
    baseline_instr = 10;
    opt_instr = 2;
    call = 40;
    opt_call = 16;
    virtual_dispatch = 10;
    guard = 3;
    alloc = 30;
    alloc_array_word = 2;
    baseline_compile_unit = 15;
    baseline_compile_fixed = 300;
    opt_compile_unit = 260;
    opt_compile_fixed = 6_000;
    baseline_bytes_per_unit = 6;
    opt_bytes_per_unit = 12;
    method_sample = 160;
    trace_sample_frame = 45;
    organizer_per_event = 35;
    ai_organizer_per_trace = 22;
    decay_per_trace = 6;
    controller_per_event = 120;
    probe = 8;
    deopt_frame = 25;
  }
