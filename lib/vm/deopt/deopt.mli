(** Frame-state mapping for bidirectional on-stack transfer.

    For an installed optimized [Code.t], the deopt table records, per
    optimized pc, how the one physical frame suspended there decomposes
    into the stack of source (baseline) frames it subsumes: for every
    frame of the inline chain, the baseline method and pc to resume at
    and the compensation recipe — where its locals live in the optimized
    register array and which slice of the optimized operand stack is its
    residual stack. The same mapping, read in the two directions, is

    - {e deoptimization} ({!Interp.deopt_top_frame}): optimized →
      baseline, used when an inline guard fails repeatedly or a class
      load invalidates a CHA proof the code speculated on; and
    - {e generalized OSR} ({!try_osr_up} / {!Interp.osr_into}):
      baseline → optimized at arbitrary mapped pcs, including points
      where inline-region frames are live — the "OSR à la Carte" shape,
      strictly more general than the depth-compatible root-level-only
      {!Interp.osr}.

    Tables are pure functions of [(program, code)]: construction
    performs host-side analysis only and charges nothing; the AOS
    charges {!Cost.deopt_frame} per frame a transfer touches. A pc maps
    to a point only when the mapping is {e provably} valid — the source
    chain's entry depths, argument-slot residuals and region local bases
    must all be recoverable and must sum to exactly the optimized pc's
    verifier entry depth. Synthesized instructions (argument stores,
    guards' fail paths) and peephole-perturbed entries simply get no
    point; {!Acsi_analysis.Jit_check} requires speculative regions to be
    dominated by mapped pcs, not covered. *)

open Acsi_bytecode
open Acsi_vm

type point = Interp.frame_plan array
(** Source frames to reconstruct, outermost (root) first. *)

type table

val table_of_code : Program.t -> Code.t -> table
(** Build the deopt table for [code]. Baseline code yields an empty
    table (no pc needs a mapping — the code {e is} the source). *)

val meth : table -> Ids.Method_id.t

val point_at : table -> pc:int -> point option
(** The valid deopt point at [pc], if the frame state there is provably
    reconstructible. *)

val point_count : table -> int
(** Number of pcs with a valid point (diagnostics and tests). *)

val covered : table -> pc:int -> bool
(** [point_at] is [Some _] — convenience for dominance checks. *)

val try_osr_up : Interp.t -> Code.t -> table -> bool
(** Attempt a generalized upward transfer: if [code] is the currently
    installed code for its method and the top frames of the VM (two or
    more — single-frame root-level transfers are {!Interp.osr}'s job)
    exactly match some point's chain (method, pc and operand-stack
    depth per frame, outermost frame running stale baseline code of the
    root), collapse them into one optimized frame via
    {!Interp.osr_into}. Returns whether a transfer happened. Only safe
    at an instruction boundary (a VM hook). *)
