open Acsi_bytecode
open Acsi_vm

type point = Interp.frame_plan array

type table = {
  tbl_meth : Ids.Method_id.t;
  points : point option array;
}

let meth t = t.tbl_meth

let point_at t ~pc =
  if pc < 0 || pc >= Array.length t.points then None else t.points.(pc)

let covered t ~pc = point_at t ~pc <> None

let point_count t =
  Array.fold_left (fun n p -> if p = None then n else n + 1) 0 t.points

(* Region identity inside one optimized body: (innermost source method,
   inline-parent chain). The expander allocates each region a contiguous
   block of locals at [callee_base]; recover that base per region:

   - primary: the synthesized argument stores ([src_pc = -1]) the
     expander emits at region entry write locals [base + k] for every
     parameter slot [k] down to 0, and the peephole pass never deletes
     stores — so the minimum synthesized-store operand in the region is
     exactly [base] whenever the callee has at least one parameter slot
     (always true for instance methods);
   - fallback: any surviving real [Load]/[Store] whose source
     instruction is known gives [base = opt_operand - src_operand];
   - a region with no recoverable base and [max_locals = 0] needs no
     base (no locals to map); otherwise the region poisons every point
     whose chain passes through it. *)
let region_key (m : Ids.Method_id.t) parents =
  ( (m :> int),
    List.map (fun ((c : Ids.Method_id.t), p) -> ((c :> int), p)) parents )

let region_bases program (code : Code.t) (entries : Code.src_entry array) =
  let tbl : (int * (int * int) list, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun pc (e : Code.src_entry) ->
      if e.Code.src_pc = -1 && e.Code.parents <> [] then
        match code.Code.instrs.(pc) with
        | Instr.Store j -> (
            let k = region_key e.Code.src_meth e.Code.parents in
            match Hashtbl.find_opt tbl k with
            | Some b when b <= j -> ()
            | _ -> Hashtbl.replace tbl k j)
        | _ -> ())
    entries;
  Array.iteri
    (fun pc (e : Code.src_entry) ->
      if e.Code.src_pc >= 0 && e.Code.parents <> [] then
        let k = region_key e.Code.src_meth e.Code.parents in
        if not (Hashtbl.mem tbl k) then
          let body = (Program.meth program e.Code.src_meth).Meth.body in
          if e.Code.src_pc < Array.length body then
            match (code.Code.instrs.(pc), body.(e.Code.src_pc)) with
            | Instr.Load j, Instr.Load i | Instr.Store j, Instr.Store i ->
                Hashtbl.replace tbl k (j - i)
            | _ -> ())
    entries;
  tbl

exception Invalid

let table_of_code program (code : Code.t) =
  match code.Code.src with
  | None ->
      {
        tbl_meth = code.Code.meth;
        points = Array.make (Array.length code.Code.instrs) None;
      }
  | Some entries ->
      let root = Program.meth program code.Code.meth in
      (* Same wrapper trick as [Interp.osr]: the optimized body viewed as
         a method of the root's signature, so the bytecode verifier can
         derive per-pc operand-stack entry depths for it. *)
      let wrapper =
        {
          root with
          Meth.body = code.Code.instrs;
          max_locals = code.Code.max_locals;
          max_stack = code.Code.max_stack;
        }
      in
      let opt_depths = Verify.entry_depths program wrapper in
      let bases = region_bases program code entries in
      let depth_cache : (int, int array) Hashtbl.t = Hashtbl.create 16 in
      let depths_of (mid : Ids.Method_id.t) =
        match Hashtbl.find_opt depth_cache (mid :> int) with
        | Some d -> d
        | None ->
            let d = Verify.entry_depths program (Program.meth program mid) in
            Hashtbl.add depth_cache (mid :> int) d;
            d
      in
      let depth_at (mid : Ids.Method_id.t) pc =
        let d = depths_of mid in
        if pc < 0 || pc >= Array.length d then raise Invalid;
        let v = d.(pc) in
        if v < 0 then raise Invalid;
        v
      in
      let base_of (m : Ids.Method_id.t) parents =
        if parents = [] then 0
        else
          match Hashtbl.find_opt bases (region_key m parents) with
          | Some b -> b
          | None ->
              if (Program.meth program m).Meth.max_locals = 0 then 0
              else raise Invalid
      in
      let argslots (instr : Instr.t) =
        match instr with
        | Instr.Call_static mid | Instr.Call_direct mid ->
            Meth.param_slots (Program.meth program mid)
        | Instr.Call_virtual (_, argc) -> argc + 1
        | _ -> raise Invalid
      in
      let point_of pc (e : Code.src_entry) =
        if e.Code.src_pc < 0 || pc >= Array.length opt_depths
           || opt_depths.(pc) < 0
        then None
        else
          try
            (* Innermost-first: (method, resume pc, region parents,
               stack slots this frame owns). Suspended callers resume AT
               their call instruction with the arguments already popped,
               so their slice is the entry depth minus argument slots —
               exactly the state [invoke] leaves behind. *)
            let rec callers = function
              | [] -> []
              | ((c : Ids.Method_id.t), p) :: rest ->
                  let body = (Program.meth program c).Meth.body in
                  if p < 0 || p >= Array.length body then raise Invalid;
                  let r = depth_at c p - argslots body.(p) in
                  if r < 0 then raise Invalid;
                  (c, p, rest, r) :: callers rest
            in
            let chain =
              (e.Code.src_meth, e.Code.src_pc, e.Code.parents,
               depth_at e.Code.src_meth e.Code.src_pc)
              :: callers e.Code.parents
            in
            let chain = List.rev chain in
            (* The outermost frame must be the root method at root level;
               anything else cannot be resumed in this physical frame. *)
            (match chain with
            | (m, _, [], _) :: _
              when Ids.Method_id.equal m code.Code.meth ->
                ()
            | _ -> raise Invalid);
            let lo = ref 0 in
            let plans =
              List.map
                (fun (m, p, rparents, len) ->
                  let plan =
                    {
                      Interp.dp_meth = m;
                      dp_pc = p;
                      dp_base = base_of m rparents;
                      dp_stack_lo = !lo;
                      dp_stack_len = len;
                    }
                  in
                  lo := !lo + len;
                  plan)
                chain
            in
            (* Exactness: the source frames' stack slices must tile the
               optimized operand stack with nothing left over, or the
               mapping would drop or invent values (the peephole pass
               can leave entries whose depths disagree — those pcs
               simply get no point). *)
            if !lo <> opt_depths.(pc) then None
            else Some (Array.of_list plans)
          with Invalid -> None
      in
      { tbl_meth = code.Code.meth; points = Array.mapi point_of entries }

let try_osr_up vm (code : Code.t) t =
  let mid = code.Code.meth in
  if
    vm.Interp.depth < 2
    || not (Interp.code_of vm mid == code)
  then false
  else
    let depth = vm.Interp.depth in
    let n = Array.length t.points in
    let matches (plans : point) =
      let k = Array.length plans in
      k >= 2 && k <= depth
      &&
      let ok = ref true in
      Array.iteri
        (fun i (p : Interp.frame_plan) ->
          if !ok then
            let fr = vm.Interp.frames.(depth - k + i) in
            let c = fr.Interp.f_code in
            if
              not
                (c.Code.tier = Code.Baseline
                && Ids.Method_id.equal c.Code.meth p.Interp.dp_meth
                && fr.Interp.f_pc = p.Interp.dp_pc
                && fr.Interp.f_sp - fr.Interp.f_base = p.Interp.dp_stack_len)
            then ok := false)
        plans;
      !ok
    in
    let rec scan pc =
      if pc >= n then false
      else
        match t.points.(pc) with
        | Some plans when matches plans ->
            Interp.osr_into vm mid ~plans ~pc;
            true
        | _ -> scan (pc + 1)
    in
    scan 0
