open Acsi_bytecode
open Interp

(* The closure ("native") execution tier: an installed method's decoded
   stream is compiled, once, into a chain of OCaml closures — one entry
   closure per source pc plus one effect closure per decoded op — and the
   interpreter dispatches whole windows into the chain instead of running
   its fetch/decode loop.

   The design splits each straight-line run (the ops from a pc up to and
   including the next control transfer, stopping before any op with a
   non-uniform charge) into

   - an *entry* closure, which performs the run's entire timer-window
     accounting up front: if the remaining budget provably covers the
     whole run ([rem > (count - 1) * icost], the exact condition under
     which the interpreter would execute every op of the run without a
     timer check becoming due), it prepays [count * icost] cycles and
     tail-calls the effect chain with the accounting already
     settled-forward; otherwise it hands the window tail to the
     interpreter's own {!Interp.step}, which owns the exact
     window-boundary behaviour — so near-boundary execution is not
     *similar* to the interpreter tier, it *is* the interpreter tier;

   - *effect* closures, one per decoded (possibly fused) op, that only
     touch the operand array and tail-call a directly captured successor:
     no per-op budget arithmetic, no dispatch on an op code, no bounds
     logic beyond what the op itself requires. Control transfers at run
     ends re-enter through the entry closure of their target pc, and ops
     with extra charges (calls, returns, guards, allocations) get
     dedicated closures replicating [step]'s branch for them exactly —
     including the unclipped [next_sample - cycles] window restart after
     guards and allocations, which deliberately ignores [window_end]
     just as the interpreter does.

   The execution state (frame, operand array, stack pointer, remaining
   budget, unsettled instruction count) lives in the VM's one {!wst}
   record rather than in closure arguments: a chain link reads the
   fields it needs, writes back the ones it changed, and applies its
   successor to the record alone. See the [nfn] documentation in
   {!Interp} for why (unknown single-argument applications compile to a
   direct call; six arguments pay the [caml_apply6] stub per link).

   Exactness therefore needs no per-op argument: entry closures use the
   same prepayment inequality [step] uses for fused ops, boundary tails
   run on [step] itself, and the seven non-uniform ops are line-for-line
   transcriptions. The differential test suite (tier on vs off, plus the
   naive [run_reference] loop) enforces byte-identical cycles, counters,
   output and hook timing on top of that argument.

   The tiny value helpers are redefined locally (same definitions, same
   error messages) because without flambda, cross-module calls into
   [Interp] would not inline into the effect closures. *)

let rerr fmt = Format.kasprintf (fun msg -> raise (Runtime_error msg)) fmt

let[@inline] as_int v =
  match (v : Value.t) with
  | Value.Int n -> n
  | Value.Null | Value.Obj _ | Value.Arr _ ->
      rerr "expected an integer, got %a" Value.pp v

let[@inline] as_obj v =
  match (v : Value.t) with
  | Value.Obj o -> o
  | Value.Null -> rerr "null dereference"
  | Value.Int _ | Value.Arr _ -> rerr "expected an object, got %a" Value.pp v

let[@inline] as_arr v =
  match (v : Value.t) with
  | Value.Arr a -> a
  | Value.Null -> rerr "null array dereference"
  | Value.Int _ | Value.Obj _ -> rerr "expected an array, got %a" Value.pp v

let[@inline] equal_cmp a b =
  match ((a : Value.t), (b : Value.t)) with
  | Value.Int x, Value.Int y -> x = y
  | Value.Null, Value.Null -> true
  | Value.Obj x, Value.Obj y -> x == y
  | Value.Arr x, Value.Arr y -> x == y
  | (Value.Int _ | Value.Null | Value.Obj _ | Value.Arr _), _ -> false

let[@inline] truthy v =
  match (v : Value.t) with
  | Value.Int 0 | Value.Null -> false
  | Value.Int _ | Value.Obj _ | Value.Arr _ -> true

(* Same shared cells as {!Value.of_int} builds its results from — a
   separate cache array is fine because [Int] values are compared
   structurally, never by identity. *)
let small = Array.init 1152 (fun i -> Value.Int (i - 128))

let[@inline] of_int n =
  if n >= -128 && n < 1024 then Array.unsafe_get small (n + 128)
  else Value.Int n

let[@inline] of_bool b = if b then Value.one else Value.zero

let[@inline] eval_binop op a b =
  match (op : Instr.binop) with
  | Instr.Add -> a + b
  | Instr.Sub -> a - b
  | Instr.Mul -> a * b
  | Instr.Div -> if b = 0 then rerr "division by zero" else a / b
  | Instr.Rem -> if b = 0 then rerr "remainder by zero" else a mod b
  | Instr.And -> a land b
  | Instr.Or -> a lor b
  | Instr.Xor -> a lxor b
  | Instr.Shl -> a lsl (b land 63)
  | Instr.Shr -> a asr (b land 63)

let[@inline] eval_cmp c a b =
  let r =
    match (c : Instr.cmp) with
    | Instr.Eq -> equal_cmp a b
    | Instr.Ne -> not (equal_cmp a b)
    | Instr.Lt -> as_int a < as_int b
    | Instr.Le -> as_int a <= as_int b
    | Instr.Gt -> as_int a > as_int b
    | Instr.Ge -> as_int a >= as_int b
  in
  if r then 1 else 0

(* Reachable only if control would flow past the last instruction —
   impossible in code that passed the install gate (Jit_check). *)
let stuck : nfn = fun _ -> rerr "execution ran past end of code"

let compile (t : t) (code : Code.t) : nfn array * int array =
  let dc = Dcode.of_code ~fuse:t.fuse t.cost code in
  let ops = dc.Dcode.ops in
  let icost = dc.Dcode.icost in
  let n = Array.length ops in
  let nfns : nfn array = Array.make (max 1 n) stuck in
  (* [chain.(pc)]: the effect chain from [pc] to the end of its run,
     valid only when the entry closure has already prepaid the whole
     run. [cnt.(pc)]: source instructions that prepayment covers (0 for
     the dedicated non-uniform closures, which pay for themselves). *)
  let chain : nfn array = Array.make (max 1 n) stuck in
  let cnt = Array.make (max 1 n) 0 in
  let chain_at i = if i < n then chain.(i) else stuck in
  let cnt_at i = if i < n then cnt.(i) else 0 in
  (* One closure per op with a non-uniform charge: a line-for-line
     transcription of [step]'s branch, ending the prepaid regime (these
     are entered with the budget *not* prepaid, and settle themselves).
     Each reads the state it needs out of [st] before any re-entrant
     dispatch ([invoke]/[continue_window]) can repopulate it. *)
  let breaker pc op : nfn =
    match (op : Dcode.op) with
    | Dcode.Call mid ->
        fun st ->
          let t = st.w_t in
          let fr = st.w_fr in
          let nin = st.w_nin in
          if st.w_rem <= 0 then begin
            flush t icost nin;
            fr.f_pc <- pc;
            fr.f_sp <- st.w_sp
          end
          else begin
            flush t icost (nin + 1);
            fr.f_pc <- pc;
            fr.f_sp <- st.w_sp;
            invoke t mid;
            continue_window t
          end
    | Dcode.Call_virtual (sel, argc) ->
        fun st ->
          let t = st.w_t in
          let fr = st.w_fr in
          let sp = st.w_sp in
          let nin = st.w_nin in
          if st.w_rem <= 0 then begin
            flush t icost nin;
            fr.f_pc <- pc;
            fr.f_sp <- sp
          end
          else begin
            flush t icost (nin + 1);
            t.cycles <- t.cycles + t.cost.Cost.virtual_dispatch;
            fr.f_pc <- pc;
            fr.f_sp <- sp;
            let recv = Array.unsafe_get st.w_regs (sp - 1 - argc) in
            invoke t (dispatch_target t recv sel);
            continue_window t
          end
    | Dcode.Guard g ->
        fun st ->
          let t = st.w_t in
          let nin = st.w_nin in
          if st.w_rem <= 0 then begin
            let fr = st.w_fr in
            flush t icost nin;
            fr.f_pc <- pc;
            fr.f_sp <- st.w_sp
          end
          else begin
            flush t icost (nin + 1);
            t.cycles <- t.cycles + t.cost.Cost.guard;
            let recv =
              Array.unsafe_get st.w_regs (st.w_sp - 1 - g.Instr.argc)
            in
            let ok =
              match recv with
              | Value.Obj o -> (
                  match Program.dispatch t.program o.Value.cls g.Instr.sel with
                  | Some target -> Ids.Method_id.equal target g.Instr.expected
                  | None -> false)
              | Value.Null | Value.Int _ | Value.Arr _ -> false
            in
            let pc' =
              if ok then begin
                t.guard_hits <- t.guard_hits + 1;
                pc + 1
              end
              else begin
                t.guard_misses <- t.guard_misses + 1;
                t.on_guard_miss t st.w_fr.f_code.Code.meth pc;
                g.Instr.fail
              end
            in
            (* Unclipped restart, exactly as [step]'s Guard branch. *)
            st.w_rem <- t.next_sample - t.cycles;
            st.w_nin <- 0;
            (Array.unsafe_get nfns pc') st
          end
    | Dcode.New cid ->
        fun st ->
          let t = st.w_t in
          let nin = st.w_nin in
          if st.w_rem <= 0 then begin
            let fr = st.w_fr in
            flush t icost nin;
            fr.f_pc <- pc;
            fr.f_sp <- st.w_sp
          end
          else begin
            flush t icost (nin + 1);
            t.cycles <- t.cycles + t.cost.Cost.alloc;
            note_class_load t cid;
            let sp = st.w_sp in
            Array.unsafe_set st.w_regs sp (Value.alloc t.program cid);
            st.w_sp <- sp + 1;
            st.w_rem <- t.next_sample - t.cycles;
            st.w_nin <- 0;
            (Array.unsafe_get nfns (pc + 1)) st
          end
    | Dcode.Array_new ->
        fun st ->
          let t = st.w_t in
          let nin = st.w_nin in
          if st.w_rem <= 0 then begin
            let fr = st.w_fr in
            flush t icost nin;
            fr.f_pc <- pc;
            fr.f_sp <- st.w_sp
          end
          else begin
            let regs = st.w_regs in
            let sp = st.w_sp in
            let len = as_int (Array.unsafe_get regs (sp - 1)) in
            if len < 0 then rerr "negative array size %d" len;
            flush t icost (nin + 1);
            t.cycles <-
              t.cycles + t.cost.Cost.alloc
              + (len * t.cost.Cost.alloc_array_word);
            Array.unsafe_set regs (sp - 1)
              (Value.Arr (Array.make len Value.zero));
            st.w_rem <- t.next_sample - t.cycles;
            st.w_nin <- 0;
            (Array.unsafe_get nfns (pc + 1)) st
          end
    | Dcode.Return ->
        fun st ->
          let t = st.w_t in
          let nin = st.w_nin in
          if st.w_rem <= 0 then begin
            let fr = st.w_fr in
            flush t icost nin;
            fr.f_pc <- pc;
            fr.f_sp <- st.w_sp
          end
          else begin
            flush t icost (nin + 1);
            let result = Array.unsafe_get st.w_regs (st.w_sp - 1) in
            t.depth <- t.depth - 1;
            if t.depth > 0 then begin
              let caller = t.frames.(t.depth - 1) in
              caller.f_regs.(caller.f_sp) <- result;
              caller.f_sp <- caller.f_sp + 1;
              caller.f_pc <- caller.f_pc + 1;
              continue_window t
            end
          end
    | Dcode.Return_void ->
        fun st ->
          let t = st.w_t in
          let nin = st.w_nin in
          if st.w_rem <= 0 then begin
            let fr = st.w_fr in
            flush t icost nin;
            fr.f_pc <- pc;
            fr.f_sp <- st.w_sp
          end
          else begin
            flush t icost (nin + 1);
            t.depth <- t.depth - 1;
            if t.depth > 0 then begin
              let caller = t.frames.(t.depth - 1) in
              caller.f_pc <- caller.f_pc + 1;
              continue_window t
            end
          end
    | _ -> assert false
  in
  (* Effect closure for one uniform-charge op: perform the (possibly
     fused) effect, write back the fields it moved, and tail into the
     captured successor — accounting untouched, the entry closure
     prepaid it. Effects are copied from [step]'s fused fast paths,
     including operand-check order. *)
  let effect_link op (k : nfn) : nfn =
    match (op : Dcode.op) with
    | Dcode.Const v ->
        fun st ->
          let sp = st.w_sp in
          Array.unsafe_set st.w_regs sp v;
          st.w_sp <- sp + 1;
          k st
    | Dcode.Load i ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          Array.unsafe_set regs sp (Array.unsafe_get regs i);
          st.w_sp <- sp + 1;
          k st
    | Dcode.Store i ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp - 1 in
          Array.unsafe_set regs i (Array.unsafe_get regs sp);
          st.w_sp <- sp;
          k st
    | Dcode.Dup ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          Array.unsafe_set regs sp (Array.unsafe_get regs (sp - 1));
          st.w_sp <- sp + 1;
          k st
    | Dcode.Pop ->
        fun st ->
          st.w_sp <- st.w_sp - 1;
          k st
    | Dcode.Swap ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let a = Array.unsafe_get regs (sp - 1) in
          Array.unsafe_set regs (sp - 1) (Array.unsafe_get regs (sp - 2));
          Array.unsafe_set regs (sp - 2) a;
          k st
    | Dcode.Binop op ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let b = as_int (Array.unsafe_get regs (sp - 1)) in
          let a = as_int (Array.unsafe_get regs (sp - 2)) in
          let sp = sp - 1 in
          Array.unsafe_set regs (sp - 1) (of_int (eval_binop op a b));
          st.w_sp <- sp;
          k st
    | Dcode.Neg ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          Array.unsafe_set regs (sp - 1)
            (of_int (-as_int (Array.unsafe_get regs (sp - 1))));
          k st
    | Dcode.Not ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          Array.unsafe_set regs (sp - 1)
            (of_bool (not (truthy (Array.unsafe_get regs (sp - 1)))));
          k st
    | Dcode.Cmp c ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let b = Array.unsafe_get regs (sp - 1) in
          let a = Array.unsafe_get regs (sp - 2) in
          let sp = sp - 1 in
          Array.unsafe_set regs (sp - 1) (of_int (eval_cmp c a b));
          st.w_sp <- sp;
          k st
    | Dcode.Get_field i ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let o = as_obj (Array.unsafe_get regs (sp - 1)) in
          Array.unsafe_set regs (sp - 1) o.Value.fields.(i);
          k st
    | Dcode.Put_field i ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let v = Array.unsafe_get regs (sp - 1) in
          let o = as_obj (Array.unsafe_get regs (sp - 2)) in
          o.Value.fields.(i) <- v;
          st.w_sp <- sp - 2;
          k st
    | Dcode.Get_global i ->
        fun st ->
          let sp = st.w_sp in
          Array.unsafe_set st.w_regs sp st.w_t.globals.(i);
          st.w_sp <- sp + 1;
          k st
    | Dcode.Put_global i ->
        fun st ->
          let sp = st.w_sp - 1 in
          st.w_t.globals.(i) <- Array.unsafe_get st.w_regs sp;
          st.w_sp <- sp;
          k st
    | Dcode.Array_get ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let i = as_int (Array.unsafe_get regs (sp - 1)) in
          let a = as_arr (Array.unsafe_get regs (sp - 2)) in
          if i < 0 || i >= Array.length a then
            rerr "array index %d out of bounds (length %d)" i (Array.length a);
          let sp = sp - 1 in
          Array.unsafe_set regs (sp - 1) (Array.unsafe_get a i);
          st.w_sp <- sp;
          k st
    | Dcode.Array_set ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let v = Array.unsafe_get regs (sp - 1) in
          let i = as_int (Array.unsafe_get regs (sp - 2)) in
          let a = as_arr (Array.unsafe_get regs (sp - 3)) in
          if i < 0 || i >= Array.length a then
            rerr "array index %d out of bounds (length %d)" i (Array.length a);
          Array.unsafe_set a i v;
          st.w_sp <- sp - 3;
          k st
    | Dcode.Array_len ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let a = as_arr (Array.unsafe_get regs (sp - 1)) in
          Array.unsafe_set regs (sp - 1) (of_int (Array.length a));
          k st
    | Dcode.Instance_of cid ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let r =
            match Array.unsafe_get regs (sp - 1) with
            | Value.Obj o ->
                Program.is_subclass st.w_t.program ~sub:o.Value.cls ~super:cid
            | Value.Null | Value.Int _ | Value.Arr _ -> false
          in
          Array.unsafe_set regs (sp - 1) (of_bool r);
          k st
    | Dcode.Print_int ->
        fun st ->
          let t = st.w_t in
          let sp = st.w_sp - 1 in
          t.output_rev <- as_int (Array.unsafe_get st.w_regs sp) :: t.output_rev;
          st.w_sp <- sp;
          k st
    | Dcode.Nop -> fun st -> k st
    (* fused, non-control *)
    | Dcode.Load2_binop (i, j, op) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let b = as_int (Array.unsafe_get regs j) in
          let a = as_int (Array.unsafe_get regs i) in
          Array.unsafe_set regs sp (of_int (eval_binop op a b));
          st.w_sp <- sp + 1;
          k st
    | Dcode.Load_const_binop (i, c, op) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let a = as_int (Array.unsafe_get regs i) in
          Array.unsafe_set regs sp (of_int (eval_binop op a c));
          st.w_sp <- sp + 1;
          k st
    | Dcode.Load2_binop_store (i, j, op, d) ->
        fun st ->
          let regs = st.w_regs in
          let b = as_int (Array.unsafe_get regs j) in
          let a = as_int (Array.unsafe_get regs i) in
          Array.unsafe_set regs d (of_int (eval_binop op a b));
          k st
    | Dcode.Load_const_binop_store (i, c, op, d) ->
        fun st ->
          let regs = st.w_regs in
          let a = as_int (Array.unsafe_get regs i) in
          Array.unsafe_set regs d (of_int (eval_binop op a c));
          k st
    | Dcode.Load_getfield_store (i, f, d) ->
        fun st ->
          let regs = st.w_regs in
          let o = as_obj (Array.unsafe_get regs i) in
          Array.unsafe_set regs d o.Value.fields.(f);
          k st
    | Dcode.Load_store (i, j) ->
        fun st ->
          let regs = st.w_regs in
          Array.unsafe_set regs j (Array.unsafe_get regs i);
          k st
    | Dcode.Const_store (v, j) ->
        fun st ->
          Array.unsafe_set st.w_regs j v;
          k st
    | Dcode.Load_getfield (i, f) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let o = as_obj (Array.unsafe_get regs i) in
          Array.unsafe_set regs sp o.Value.fields.(f);
          st.w_sp <- sp + 1;
          k st
    | Dcode.Load2 (i, j) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          Array.unsafe_set regs sp (Array.unsafe_get regs i);
          Array.unsafe_set regs (sp + 1) (Array.unsafe_get regs j);
          st.w_sp <- sp + 2;
          k st
    | Dcode.Binop_store (op, j) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let b = as_int (Array.unsafe_get regs (sp - 1)) in
          let a = as_int (Array.unsafe_get regs (sp - 2)) in
          Array.unsafe_set regs j (of_int (eval_binop op a b));
          st.w_sp <- sp - 2;
          k st
    | Dcode.Const_binop (c, op) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let a = as_int (Array.unsafe_get regs (sp - 1)) in
          Array.unsafe_set regs (sp - 1) (of_int (eval_binop op a c));
          k st
    | Dcode.Store_load (i, j) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          Array.unsafe_set regs i (Array.unsafe_get regs (sp - 1));
          Array.unsafe_set regs (sp - 1) (Array.unsafe_get regs j);
          k st
    | Dcode.Store_store (i, j) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          Array.unsafe_set regs i (Array.unsafe_get regs (sp - 1));
          Array.unsafe_set regs j (Array.unsafe_get regs (sp - 2));
          st.w_sp <- sp - 2;
          k st
    | Dcode.Getfield_load (f, j) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let o = as_obj (Array.unsafe_get regs (sp - 1)) in
          Array.unsafe_set regs (sp - 1) o.Value.fields.(f);
          Array.unsafe_set regs sp (Array.unsafe_get regs j);
          st.w_sp <- sp + 1;
          k st
    | Dcode.Load_binop (i, op) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let b = as_int (Array.unsafe_get regs i) in
          let a = as_int (Array.unsafe_get regs (sp - 1)) in
          Array.unsafe_set regs (sp - 1) (of_int (eval_binop op a b));
          k st
    | Dcode.Load_cmp (i, c) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let b = Array.unsafe_get regs i in
          let a = Array.unsafe_get regs (sp - 1) in
          Array.unsafe_set regs (sp - 1) (of_int (eval_cmp c a b));
          k st
    | Dcode.Load_arrayget i ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let idx = as_int (Array.unsafe_get regs i) in
          let a = as_arr (Array.unsafe_get regs (sp - 1)) in
          if idx < 0 || idx >= Array.length a then
            rerr "array index %d out of bounds (length %d)" idx
              (Array.length a);
          Array.unsafe_set regs (sp - 1) (Array.unsafe_get a idx);
          k st
    | Dcode.Binop_const (op, v) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let b = as_int (Array.unsafe_get regs (sp - 1)) in
          let a = as_int (Array.unsafe_get regs (sp - 2)) in
          Array.unsafe_set regs (sp - 2) (of_int (eval_binop op a b));
          Array.unsafe_set regs (sp - 1) v;
          k st
    | Dcode.Binop_binop (op1, op2) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let b = as_int (Array.unsafe_get regs (sp - 1)) in
          let a = as_int (Array.unsafe_get regs (sp - 2)) in
          let r1 = eval_binop op1 a b in
          let a2 = as_int (Array.unsafe_get regs (sp - 3)) in
          Array.unsafe_set regs (sp - 3) (of_int (eval_binop op2 a2 r1));
          st.w_sp <- sp - 2;
          k st
    | Dcode.Const_cmp (v, c) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let a = Array.unsafe_get regs (sp - 1) in
          Array.unsafe_set regs (sp - 1) (of_int (eval_cmp c a v));
          k st
    | Dcode.Arrayget_store j ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let idx = as_int (Array.unsafe_get regs (sp - 1)) in
          let a = as_arr (Array.unsafe_get regs (sp - 2)) in
          if idx < 0 || idx >= Array.length a then
            rerr "array index %d out of bounds (length %d)" idx
              (Array.length a);
          Array.unsafe_set regs j (Array.unsafe_get a idx);
          st.w_sp <- sp - 2;
          k st
    | Dcode.Jump _ | Dcode.Jump_if _ | Dcode.Jump_ifnot _
    | Dcode.Load2_cmp_jumpifnot _ | Dcode.Load_const_cmp_jumpifnot _
    | Dcode.Cmp_jumpifnot _ | Dcode.Cmp_jumpif _ | Dcode.Store_jump _
    | Dcode.Load_jumpifnot _ | Dcode.Call _ | Dcode.Call_virtual _
    | Dcode.Guard _ | Dcode.New _ | Dcode.Array_new | Dcode.Return
    | Dcode.Return_void ->
        assert false
  in
  (* Effect closure for a run-terminating control transfer: both
     successors re-enter through their target's *entry* closure (looked
     up at run time in [nfns]), which re-checks the budget for its own
     run. *)
  let term_link op ~next : nfn =
    match (op : Dcode.op) with
    | Dcode.Jump target -> fun st -> (Array.unsafe_get nfns target) st
    | Dcode.Jump_if target ->
        fun st ->
          let sp = st.w_sp - 1 in
          st.w_sp <- sp;
          if truthy (Array.unsafe_get st.w_regs sp) then
            (Array.unsafe_get nfns target) st
          else (Array.unsafe_get nfns next) st
    | Dcode.Jump_ifnot target ->
        fun st ->
          let sp = st.w_sp - 1 in
          st.w_sp <- sp;
          if truthy (Array.unsafe_get st.w_regs sp) then
            (Array.unsafe_get nfns next) st
          else (Array.unsafe_get nfns target) st
    | Dcode.Load2_cmp_jumpifnot (i, j, c, target) ->
        fun st ->
          let regs = st.w_regs in
          let r =
            eval_cmp c (Array.unsafe_get regs i) (Array.unsafe_get regs j)
          in
          if r <> 0 then (Array.unsafe_get nfns next) st
          else (Array.unsafe_get nfns target) st
    | Dcode.Load_const_cmp_jumpifnot (i, v, c, target) ->
        fun st ->
          let r = eval_cmp c (Array.unsafe_get st.w_regs i) v in
          if r <> 0 then (Array.unsafe_get nfns next) st
          else (Array.unsafe_get nfns target) st
    | Dcode.Cmp_jumpifnot (c, target) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let b = Array.unsafe_get regs (sp - 1) in
          let a = Array.unsafe_get regs (sp - 2) in
          st.w_sp <- sp - 2;
          if eval_cmp c a b <> 0 then (Array.unsafe_get nfns next) st
          else (Array.unsafe_get nfns target) st
    | Dcode.Cmp_jumpif (c, target) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp in
          let b = Array.unsafe_get regs (sp - 1) in
          let a = Array.unsafe_get regs (sp - 2) in
          st.w_sp <- sp - 2;
          if eval_cmp c a b <> 0 then (Array.unsafe_get nfns target) st
          else (Array.unsafe_get nfns next) st
    | Dcode.Store_jump (i, target) ->
        fun st ->
          let regs = st.w_regs in
          let sp = st.w_sp - 1 in
          Array.unsafe_set regs i (Array.unsafe_get regs sp);
          st.w_sp <- sp;
          (Array.unsafe_get nfns target) st
    | Dcode.Load_jumpifnot (i, target) ->
        fun st ->
          if truthy (Array.unsafe_get st.w_regs i) then
            (Array.unsafe_get nfns next) st
          else (Array.unsafe_get nfns target) st
    | _ -> assert false
  in
  (* Pass 1, high pc to low: effect chains and prepayment counts. A
     successor's chain is always built before its predecessors, so
     straight-line links capture it directly — the only run-time table
     lookups are at control transfers. *)
  for pc = n - 1 downto 0 do
    let op = ops.(pc) in
    match op with
    | Dcode.Call _ | Dcode.Call_virtual _ | Dcode.Guard _ | Dcode.New _
    | Dcode.Array_new | Dcode.Return | Dcode.Return_void ->
        let b = breaker pc op in
        nfns.(pc) <- b;
        chain.(pc) <- b;
        cnt.(pc) <- 0
    | Dcode.Jump _ | Dcode.Jump_if _ | Dcode.Jump_ifnot _
    | Dcode.Load2_cmp_jumpifnot _ | Dcode.Load_const_cmp_jumpifnot _
    | Dcode.Cmp_jumpifnot _ | Dcode.Cmp_jumpif _ | Dcode.Store_jump _
    | Dcode.Load_jumpifnot _ ->
        let w = Dcode.width op in
        chain.(pc) <- term_link op ~next:(pc + w);
        cnt.(pc) <- w
    | _ ->
        let w = Dcode.width op in
        let next = pc + w in
        chain.(pc) <- effect_link op (chain_at next);
        cnt.(pc) <- w + cnt_at next
  done;
  (* Pass 2: entry closures for every pc inside a run. The prepayment
     inequality [rem > (c - 1) * icost] is exactly the condition under
     which [step] executes [c] more uniform-cost instructions without a
     timer check becoming due; when it fails, the window tail belongs to
     [step] itself. *)
  for pc = 0 to n - 1 do
    let c = cnt.(pc) in
    if c > 0 then begin
      let pre = (c - 1) * icost in
      let pay = c * icost in
      let link = chain.(pc) in
      nfns.(pc) <-
        (fun st ->
          let rem = st.w_rem in
          if rem > pre then begin
            st.w_rem <- rem - pay;
            st.w_nin <- st.w_nin + c;
            link st
          end
          else
            let regs = st.w_regs in
            step st.w_t st.w_fr ops icost regs regs pc st.w_sp rem st.w_nin)
    end
  done;
  (* Operand-stack entry depths, for the OSR-transfer cross-check: the
     same derivation the interpreter side performs, run at compile time
     against the code actually being installed. *)
  let entry_depths =
    let root = Program.meth t.program code.Code.meth in
    let wrapper =
      {
        root with
        Meth.body = code.Code.instrs;
        max_locals = code.Code.max_locals;
        max_stack = code.Code.max_stack;
      }
    in
    Verify.entry_depths t.program wrapper
  in
  (nfns, entry_depths)

(* The bench sweep runs one program under dozens of policies, and every
   run closure-compiles the same baseline bodies again. A baseline
   body's closure code depends only on the bytecode, the cost model and
   the fusion flag — never on the VM instance (runtime state flows in
   through the [wst] record the closures receive) — so the compiled
   closures can be shared across runs of the same program: one
   (program, cost, fuse) entry maps method ids to their compiled code.
   Optimized bodies are run-specific (each run inlines differently) and
   are never cached. The entry list is capped and
   most-recently-used-first so suites that churn through thousands of
   generated programs neither pin them all nor scan a long list. *)
type shared_code = {
  sc_program : Program.t;
  sc_cost : Cost.t;
  sc_fuse : bool;
  sc_methods : (nfn array * int array) option array;  (* by method id *)
}

let shared : shared_code list ref = ref []
let shared_max = 32
let shared_mutex = Mutex.create ()

(* Process-global cache traffic counters, guarded by [shared_mutex]. A
   hit is a method whose closures were found compiled; a miss compiles
   them (and populates the cache); an eviction drops a whole
   (program, cost, fuse) entry off the MRU tail. Reads outside the
   mutex see a consistent-enough snapshot for reporting. *)
type cache_stats = { hits : int; misses : int; evictions : int }

let cache_hits = ref 0
let cache_misses = ref 0
let cache_evictions = ref 0

let cache_stats () =
  Mutex.lock shared_mutex;
  let s =
    { hits = !cache_hits; misses = !cache_misses; evictions = !cache_evictions }
  in
  Mutex.unlock shared_mutex;
  s

let reset_cache_stats () =
  Mutex.lock shared_mutex;
  cache_hits := 0;
  cache_misses := 0;
  cache_evictions := 0;
  Mutex.unlock shared_mutex

let compile_baseline_cached t (mid : Ids.Method_id.t) (code : Code.t) =
  Mutex.lock shared_mutex;
  let entry =
    match
      List.find_opt
        (fun e ->
          e.sc_program == t.program && e.sc_fuse = t.fuse && e.sc_cost = t.cost)
        !shared
    with
    | Some e ->
        shared := e :: List.filter (fun x -> x != e) !shared;
        e
    | None ->
        let e =
          {
            sc_program = t.program;
            sc_cost = t.cost;
            sc_fuse = t.fuse;
            sc_methods = Array.make (Program.method_count t.program) None;
          }
        in
        cache_evictions :=
          !cache_evictions + max 0 (List.length !shared - (shared_max - 1));
        shared := e :: List.filteri (fun i _ -> i < shared_max - 1) !shared;
        e
  in
  let cached = entry.sc_methods.((mid :> int)) in
  (match cached with
  | Some _ -> incr cache_hits
  | None -> incr cache_misses);
  Mutex.unlock shared_mutex;
  match cached with
  | Some r -> r
  | None ->
      (* Compile outside the lock; two domains racing on one method both
         produce equivalent closures and the later store wins. *)
      let r = compile t code in
      Mutex.lock shared_mutex;
      entry.sc_methods.((mid :> int)) <- Some r;
      Mutex.unlock shared_mutex;
      r

let install t (mid : Ids.Method_id.t) (code : Code.t) =
  let fns, entry_depths =
    match code.Code.tier with
    | Code.Baseline -> compile_baseline_cached t mid code
    | Code.Optimized -> compile t code
  in
  Interp.install_native t mid ~fns ~entry_depths
