(** Executable code, as installed in the VM's code table.

    A method's code is either its baseline compilation (the bytecode body,
    executed at baseline per-instruction cost) or an optimized compilation
    produced by the JIT (inline-expanded bytecode at optimized cost).

    Optimized code carries a *source map*: for every pc, the source-level
    method and pc the instruction came from, plus the chain of inline
    parents (caller, callsite) within the same physical frame. This is the
    mechanism that lets the trace listener recover the source-level view of
    optimized stack frames (paper §3.3, "Optimized Stack Frames"). *)

open Acsi_bytecode

type tier = Baseline | Optimized

type src_entry = {
  src_meth : Ids.Method_id.t;
      (** source method owning this instruction (the innermost inlinee) *)
  src_pc : int;
      (** pc within that method's baseline body; [-1] for instructions the
          JIT synthesized (guards, argument stores, rewired jumps) *)
  parents : (Ids.Method_id.t * int) list;
      (** inline parents, innermost-first: [(caller, callsite src pc)] *)
}

type t = {
  meth : Ids.Method_id.t;
  tier : tier;
  instrs : Instr.t array;
  max_locals : int;
  max_stack : int;
  src : src_entry array option;  (** [None] for baseline (identity map) *)
  code_bytes : int;  (** modeled machine-code size *)
  assumptions : (Ids.Selector.t * Ids.Method_id.t) list;
      (** CHA proofs this code speculates on without a guard:
          [(sel, target)] means "every loaded receiver class dispatches
          [sel] to [target]". Empty for baseline and for fully guarded
          optimized code. Loading a class that violates an assumption
          must deoptimize/discard the code before the class is used. *)
}

val baseline : Cost.t -> Meth.t -> t
(** The baseline compilation of a method: its body verbatim. *)

val source_at : t -> pc:int -> (Ids.Method_id.t * int) * (Ids.Method_id.t * int) list
(** [source_at code ~pc] is [((m, src_pc), parents)]: the source-level
    method and pc executing at [pc], plus the inline parents within this
    physical frame, innermost-first. *)

val pp : Format.formatter -> t -> unit
