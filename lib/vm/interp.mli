(** The virtual machine interpreter.

    Executes whatever code the code table currently holds for each method —
    baseline bodies or JIT-produced optimized code — while advancing the
    virtual cycle clock according to {!Cost}. New code activates on the
    next invocation of the method; frames already on the stack keep
    executing the code they started in, unless the AOS explicitly
    transfers the innermost frame with {!osr}.

    Internally each installed [Code.t] is pre-decoded ({!Dcode}) and the
    timer check is batched over windows of provably event-free
    instructions; both are exact-equivalence transformations — cycle
    counts, hook firing points, counters and output are bit-identical to
    the naive instruction-at-a-time loop, which is kept as
    {!run_reference} and differentially tested against {!run}.

    Hooks let the adaptive optimization system observe execution without
    the interpreter knowing anything about it:
    - [on_first_execution] fires the first time a method is invoked
      (modeling lazy baseline compilation);
    - [on_invoke] fires every [invoke_stride]-th method invocation, after
      the callee frame is pushed — this models Jikes RVM's prologue
      yieldpoint edge sampling, making edge samples proportional to
      invocation frequency;
    - [on_timer_sample] fires every [sample_period] virtual cycles,
      modeling the 100 Hz timer tick that drives the method listener. *)

open Acsi_bytecode

exception Runtime_error of string
(** Null dereference, out-of-bounds access, division by zero, missing
    dispatch target, or call-stack overflow. *)

exception Cycle_limit_exceeded

(** {2 Representation}

    The frame and VM records are exposed (rather than abstract) for one
    consumer: the closure-tier compiler {!Tier}, which compiles decoded
    bytecode into chains of closures that manipulate VM state directly at
    interpreter speed. Treat them as read-only outside [Acsi_vm]; all
    invariants are documented on the implementation. *)

type frame = {
  mutable f_code : Code.t;
  mutable f_dcode : Dcode.t;
  mutable f_ncode : nfn array;
      (** closure-tier entry points, one per source pc; [[||]] means the
          frame executes on the interpreter tier *)
  mutable f_pc : int;
  mutable f_regs : Value.t array;
      (** locals in [0, f_base); operand stack grows from [f_base] up *)
  mutable f_base : int;
  mutable f_sp : int;  (** absolute index into [f_regs] *)
}

and t = {
  program : Program.t;
  cost : Cost.t;
  fuse : bool;
  mutable cycles : int;
  globals : Value.t array;
  code_table : Code.t array;
  dcode_table : Dcode.t array;
  param_slots : int array;
  mutable frames : frame array;
  mutable depth : int;
  mutable output_rev : int list;
  mutable instr_count : int;
  mutable call_count : int;
  mutable guard_hits : int;
  mutable guard_misses : int;
  mutable osr_up : int;
  mutable osr_down : int;
  mutable deopt_guard : int;
  mutable deopt_invalidate : int;
  executed : bool array;
  invocations : int array;
  class_loaded : bool array;
  baseline_code : Code.t array;
  baseline_dcode : Dcode.t array;
  mutable on_first_execution : Ids.Method_id.t -> unit;
  mutable on_invoke : t -> Ids.Method_id.t -> unit;
  mutable on_timer_sample : t -> unit;
  mutable on_class_load : t -> Ids.Class_id.t -> unit;
  mutable on_guard_miss : t -> Ids.Method_id.t -> int -> unit;
  sample_period : int;
  mutable next_sample : int;
  invoke_stride : int;
  mutable invoke_countdown : int;
  mutable next_thread_id : int;
  mutable window_end : int;
  native_table : nfn array array;
  native_depths : int array array;
  mutable calibrate : bool;
  cal_cycles : int array;
  cal_host_s : float array;
  wst : wst;
}

and nfn = wst -> unit
(** A closure-tier entry point: resumes its frame at the pc the closure
    was compiled for, reading the execution state out of the VM's one
    {!wst} record. Single-argument closures apply directly in native
    code; the previous six-argument form paid the [caml_apply6] stub on
    every link of every effect chain. *)

and wst = {
  w_t : t;
  mutable w_fr : frame;  (** the executing frame *)
  mutable w_regs : Value.t array;  (** [w_fr.f_regs] *)
  mutable w_sp : int;  (** absolute, like [f_sp] *)
  mutable w_rem : int;  (** virtual cycles until the next timer check *)
  mutable w_nin : int;
      (** instructions executed but not yet settled (see {!flush}) *)
}
(** The closure tier's execution state, threaded through [nfn] chains by
    mutation instead of arguments. One record per VM ([t.wst]): windows
    are entered and left one at a time, and re-entrant dispatches
    (calls, returns, OSR restarts) re-populate the fields before
    jumping, so no two live uses overlap. Populated by the window
    dispatchers; nothing outside [Acsi_vm] should write it. *)

(** {2 Deoptimization plans}

    A transfer between one optimized frame and the stack of source
    (baseline) frames it subsumes is described by an array of
    [frame_plan]s, listed outermost-first. Plans are constructed and
    validated by the [Acsi_deopt] library from a [Code.t]'s inline map;
    the VM only executes them. All offsets index the *optimized* frame's
    register array: a region's locals live at [dp_base, ...) and its
    operand-stack slice at [f_base + dp_stack_lo, ... + dp_stack_len).
    For non-innermost plans, [dp_pc] is the call instruction the source
    frame is suspended at and [dp_stack_len] its residual stack depth
    after arguments were popped. *)

type frame_plan = {
  dp_meth : Ids.Method_id.t;
  dp_pc : int;
  dp_base : int;
  dp_stack_lo : int;
  dp_stack_len : int;
}

(** Why a downward transfer happened (the deopt-reason taxonomy). *)
type deopt_reason = Guard_storm | Cha_invalidated

val create :
  ?cost:Cost.t ->
  ?sample_period:int ->
  ?invoke_stride:int ->
  ?fuse:bool ->
  Program.t ->
  t
(** A fresh VM with every method's code table entry set to its baseline
    compilation. [sample_period] defaults to 100_000 cycles;
    [invoke_stride] to 2048 invocations. [fuse] (default [true]) controls
    the superinstruction pass of the pre-decoder; results are identical
    either way (used by the differential tests). *)

val program : t -> Program.t
val cost : t -> Cost.t

val sample_period : t -> int
(** The timer-sample period this VM was created with: the virtual-cycle
    weight each timer sample represents (used by sampled profiles). *)

val cycles : t -> int
(** Application cycles consumed so far (excluding AOS overhead, which the
    AOS accounts for separately). *)

val instructions_executed : t -> int
val calls_executed : t -> int

val invocation_count : t -> Ids.Method_id.t -> int
(** Dynamic invocations of one method (inlined calls do not count). *)

val guard_hits : t -> int
val guard_misses : t -> int

val osr_count : t -> int
(** Successful on-stack transfers in either direction
    ([osr_up + osr_down]). *)

val osr_up : t -> int
(** Upward transfers: interpreter/baseline frames replaced by optimized
    code ({!osr} and {!osr_into}). *)

val osr_down : t -> int
(** Downward transfers (deoptimizations): optimized frames replaced by
    reconstructed baseline frames ({!deopt_top_frame}). *)

val deopt_guard_count : t -> int
(** [osr_down] transfers whose reason was {!Guard_storm}. *)

val deopt_invalidate_count : t -> int
(** [osr_down] transfers whose reason was {!Cha_invalidated}. *)

val output : t -> int list
(** Values printed by [Print_int], oldest first. The observable behaviour
    used by the semantics-preservation tests. *)

val install_code : t -> Ids.Method_id.t -> Code.t -> unit
(** Also discards any closure-tier code compiled for the replaced
    [Code.t]; re-install with {!install_native} after recompiling. *)

val install_native : t ->
  Ids.Method_id.t -> fns:nfn array -> entry_depths:int array -> unit
(** Activate closure-tier entry points for the *currently installed*
    code of [mid] (one per source pc; [entry_depths.(pc)] is the
    operand-stack depth the compiler derived for entering at [pc] —
    cross-checked on OSR transfers). New invocations dispatch through
    the closures; live frames keep their tier. Raises [Invalid_argument]
    if [fns] does not cover the installed code 1:1. *)

val native_installed : t -> Ids.Method_id.t -> bool

val set_calibrate : t -> bool -> unit
(** Enable per-tier host-time sampling in the driver loops (off by
    default; costs two clock reads per window when on). *)

val calibration : t -> (string * int * float) list
(** [(bucket, virtual_cycles, host_seconds)] accumulated while
    calibration was on, for buckets ["interp"] (interpreter-tier
    windows), ["closure"] (closure-tier windows) and ["system"] (timer
    hooks, i.e. AOS work). Attribution is per window: a window that
    crosses tiers through a call is attributed to the tier it entered
    on. Host seconds are wall time — nondeterministic; nothing on the
    virtual side reads them. *)

val code_of : t -> Ids.Method_id.t -> Code.t

val decoded_of : t -> Ids.Method_id.t -> Dcode.t
(** The pre-decoded form currently installed for [mid] (for tests). *)

val was_executed : t -> Ids.Method_id.t -> bool
(** Whether the method has ever been invoked (i.e. baseline-compiled). *)

val set_on_first_execution : t -> (Ids.Method_id.t -> unit) -> unit
val set_on_invoke : t -> (t -> Ids.Method_id.t -> unit) -> unit
val set_on_timer_sample : t -> (t -> unit) -> unit

val set_on_class_load : t -> (t -> Ids.Class_id.t -> unit) -> unit
(** [on_class_load] fires at a class's first instantiation (the model's
    class-load event), after the allocation's cycles were charged and
    *before* the instance exists — so a CHA invalidation handler runs
    ahead of any possible dispatch on the new class. Fires inside an
    execution window: the handler may charge cycles but must not mutate
    the frame stack. *)

val set_on_guard_miss : t -> (t -> Ids.Method_id.t -> int -> unit) -> unit
(** [on_guard_miss vm mid pc] fires when the guard at [pc] of [mid]'s
    installed code fails, after the miss was counted. Same in-window
    restrictions as [on_class_load]. *)

val class_is_loaded : t -> Ids.Class_id.t -> bool
(** Whether the class has been instantiated at least once. *)

val baseline_code_of : t -> Ids.Method_id.t -> Code.t
(** The method's initial baseline compilation, independent of what
    {!install_code} later activated (deoptimization reconstructs source
    frames against this). *)

val deopt_top_frame :
  t -> plans:frame_plan array -> reason:deopt_reason -> unit
(** Replace the innermost (optimized) frame by the stack of baseline
    frames described by [plans]. Only safe at an instruction boundary
    (a timer hook) where the frame's [f_pc]/[f_sp] are settled. Charges
    nothing; the caller accounts for the transfer cost. *)

val osr_into : t -> Ids.Method_id.t -> plans:frame_plan array -> pc:int -> unit
(** Replace the top [Array.length plans] frames (which the caller has
    verified to match [plans]) by one frame of [mid]'s currently
    installed code resuming at [pc] — the inverse of
    {!deopt_top_frame}, generalizing {!osr} across inline regions. *)

val charge : t -> int -> unit
(** Advance the virtual clock by externally-accounted cycles (the runtime
    uses this to make AOS overhead visible to the timer). *)

val osr : t -> Ids.Method_id.t -> bool
(** Attempt on-stack replacement of the innermost frame onto the currently
    installed code for [mid] (an extension over the paper's system, which
    had none — recompiled code normally activates on the next invocation).
    Only safe at an instruction boundary, i.e. from within a VM hook.
    Returns whether a transfer happened. *)

val walk_source_stack : t -> f:(Ids.Method_id.t -> int -> bool) -> unit
(** Visit the source-level call stack innermost-first as
    [(method, source pc)] pairs, expanding optimized frames through their
    inline maps. The innermost pair is the currently executing method;
    each subsequent pair is a caller with the pc of its call site. [f]
    returns [false] to stop walking. *)

val stack_depth : t -> int
(** Physical frame count (for tests). *)

val run : ?cycle_limit:int -> t -> unit
(** Execute from the program's [main] until it returns. Raises
    {!Cycle_limit_exceeded} if the clock passes [cycle_limit]. *)

val run_reference : ?cycle_limit:int -> t -> unit
(** The naive instruction-at-a-time interpreter loop, kept as the
    executable specification of {!run}: on any program and hook
    configuration both produce bit-identical cycles, counters, output and
    hook timing. Roughly 2-3x slower; exists for differential testing. *)

(** {2 Virtual threads}

    A virtual thread is a suspendable call stack running the program's
    [main]. The VM multiplexes many of them over its single virtual
    clock: {!resume} swaps a thread's stack in, interprets for up to a
    quantum of cycles, and suspends it again at a cycle-budget window
    boundary — the same yield points where the single-threaded driver
    checks the timer, so sampling happens at thread switches exactly as
    with Jikes RVM's yieldpoint-based quanta. Clock, code tables, heap,
    globals, hooks and counters are shared across threads (one JVM, many
    Java threads); only the call stack is per-thread. Frames of the same
    method in different threads share no mutable state: each invocation
    allocates a fresh frame, and decoded code is immutable. *)

type thread

type thread_status = Running | Done

val spawn : t -> thread
(** A fresh suspended thread poised to invoke the program's [main]. The
    main frame is pushed (and [main]'s first-execution hook fired, if it
    has never run) on the first {!resume}. *)

val thread_id : thread -> int
(** Spawn-order identifier, unique within this VM. *)

val thread_depth : thread -> int
(** Physical frame count at the last suspension (0 before the first
    resume and after completion). *)

val thread_done : thread -> bool
(** Whether the thread has started and run [main] to completion. *)

val resume : ?cycle_limit:int -> t -> thread -> quantum:int -> thread_status
(** Execute the thread for at most [quantum] virtual cycles (timer hooks
    included), then suspend it. Returns [Done] when [main] returned.
    Raises [Invalid_argument] if [quantum <= 0], {!Cycle_limit_exceeded}
    if the shared clock passes [cycle_limit]. Must not be called
    re-entrantly (from within a VM hook). *)

(** {2 Execution internals, exposed for the closure tier ({!Tier})}

    The tier compiler emits closures that replicate [step]'s observable
    behaviour exactly; they reuse these helpers so settlement rules,
    error messages, and cross-tier transfers have a single definition.
    Not a stable public API. *)

val rerr : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Runtime_error} with a formatted message. *)

val as_int : Value.t -> int
val as_obj : Value.t -> Value.obj
val as_arr : Value.t -> Value.t array
val eval_binop : Instr.binop -> int -> int -> int
val eval_cmp : Instr.cmp -> Value.t -> Value.t -> int

val flush : t -> int -> int -> unit
(** [flush t icost ninstr] settles [ninstr] deferred instructions, each
    of which charged exactly [icost]. *)

val invoke : t -> Ids.Method_id.t -> unit
(** Push a callee frame, move arguments, charge the call cost, fire the
    invocation hooks — exactly the interpreter's call sequence. *)

val dispatch_target : t -> Value.t -> Ids.Selector.t -> Ids.Method_id.t

val note_class_load : t -> Ids.Class_id.t -> unit
(** Mark the class loaded and fire [on_class_load] if this is its first
    instantiation ([New] branches of all execution engines call this). *)

val step :
  t ->
  frame ->
  Dcode.op array ->
  int ->
  Value.t array ->
  Value.t array ->
  int ->
  int ->
  int ->
  int ->
  unit
(** [step t fr ops icost stack locals pc sp remaining ninstr]: the
    interpreter's window loop. The closure tier delegates to it near
    window ends (when a prepaid block no longer fits), inheriting the
    exact window-boundary behaviour by construction. *)

val continue_window : t -> unit
(** Resume the (possibly new) top frame inside the current window,
    dispatching on its tier. *)
