(** The virtual machine interpreter.

    Executes whatever code the code table currently holds for each method —
    baseline bodies or JIT-produced optimized code — while advancing the
    virtual cycle clock according to {!Cost}. New code activates on the
    next invocation of the method; frames already on the stack keep
    executing the code they started in, unless the AOS explicitly
    transfers the innermost frame with {!osr}.

    Internally each installed [Code.t] is pre-decoded ({!Dcode}) and the
    timer check is batched over windows of provably event-free
    instructions; both are exact-equivalence transformations — cycle
    counts, hook firing points, counters and output are bit-identical to
    the naive instruction-at-a-time loop, which is kept as
    {!run_reference} and differentially tested against {!run}.

    Hooks let the adaptive optimization system observe execution without
    the interpreter knowing anything about it:
    - [on_first_execution] fires the first time a method is invoked
      (modeling lazy baseline compilation);
    - [on_invoke] fires every [invoke_stride]-th method invocation, after
      the callee frame is pushed — this models Jikes RVM's prologue
      yieldpoint edge sampling, making edge samples proportional to
      invocation frequency;
    - [on_timer_sample] fires every [sample_period] virtual cycles,
      modeling the 100 Hz timer tick that drives the method listener. *)

open Acsi_bytecode

exception Runtime_error of string
(** Null dereference, out-of-bounds access, division by zero, missing
    dispatch target, or call-stack overflow. *)

exception Cycle_limit_exceeded

type t

val create :
  ?cost:Cost.t ->
  ?sample_period:int ->
  ?invoke_stride:int ->
  ?fuse:bool ->
  Program.t ->
  t
(** A fresh VM with every method's code table entry set to its baseline
    compilation. [sample_period] defaults to 100_000 cycles;
    [invoke_stride] to 2048 invocations. [fuse] (default [true]) controls
    the superinstruction pass of the pre-decoder; results are identical
    either way (used by the differential tests). *)

val program : t -> Program.t
val cost : t -> Cost.t

val sample_period : t -> int
(** The timer-sample period this VM was created with: the virtual-cycle
    weight each timer sample represents (used by sampled profiles). *)

val cycles : t -> int
(** Application cycles consumed so far (excluding AOS overhead, which the
    AOS accounts for separately). *)

val instructions_executed : t -> int
val calls_executed : t -> int

val invocation_count : t -> Ids.Method_id.t -> int
(** Dynamic invocations of one method (inlined calls do not count). *)

val guard_hits : t -> int
val guard_misses : t -> int

val osr_count : t -> int
(** Successful on-stack replacements performed so far. *)

val output : t -> int list
(** Values printed by [Print_int], oldest first. The observable behaviour
    used by the semantics-preservation tests. *)

val install_code : t -> Ids.Method_id.t -> Code.t -> unit
val code_of : t -> Ids.Method_id.t -> Code.t

val decoded_of : t -> Ids.Method_id.t -> Dcode.t
(** The pre-decoded form currently installed for [mid] (for tests). *)

val was_executed : t -> Ids.Method_id.t -> bool
(** Whether the method has ever been invoked (i.e. baseline-compiled). *)

val set_on_first_execution : t -> (Ids.Method_id.t -> unit) -> unit
val set_on_invoke : t -> (t -> Ids.Method_id.t -> unit) -> unit
val set_on_timer_sample : t -> (t -> unit) -> unit

val charge : t -> int -> unit
(** Advance the virtual clock by externally-accounted cycles (the runtime
    uses this to make AOS overhead visible to the timer). *)

val osr : t -> Ids.Method_id.t -> bool
(** Attempt on-stack replacement of the innermost frame onto the currently
    installed code for [mid] (an extension over the paper's system, which
    had none — recompiled code normally activates on the next invocation).
    Only safe at an instruction boundary, i.e. from within a VM hook.
    Returns whether a transfer happened. *)

val walk_source_stack : t -> f:(Ids.Method_id.t -> int -> bool) -> unit
(** Visit the source-level call stack innermost-first as
    [(method, source pc)] pairs, expanding optimized frames through their
    inline maps. The innermost pair is the currently executing method;
    each subsequent pair is a caller with the pc of its call site. [f]
    returns [false] to stop walking. *)

val stack_depth : t -> int
(** Physical frame count (for tests). *)

val run : ?cycle_limit:int -> t -> unit
(** Execute from the program's [main] until it returns. Raises
    {!Cycle_limit_exceeded} if the clock passes [cycle_limit]. *)

val run_reference : ?cycle_limit:int -> t -> unit
(** The naive instruction-at-a-time interpreter loop, kept as the
    executable specification of {!run}: on any program and hook
    configuration both produce bit-identical cycles, counters, output and
    hook timing. Roughly 2-3x slower; exists for differential testing. *)

(** {2 Virtual threads}

    A virtual thread is a suspendable call stack running the program's
    [main]. The VM multiplexes many of them over its single virtual
    clock: {!resume} swaps a thread's stack in, interprets for up to a
    quantum of cycles, and suspends it again at a cycle-budget window
    boundary — the same yield points where the single-threaded driver
    checks the timer, so sampling happens at thread switches exactly as
    with Jikes RVM's yieldpoint-based quanta. Clock, code tables, heap,
    globals, hooks and counters are shared across threads (one JVM, many
    Java threads); only the call stack is per-thread. Frames of the same
    method in different threads share no mutable state: each invocation
    allocates a fresh frame, and decoded code is immutable. *)

type thread

type thread_status = Running | Done

val spawn : t -> thread
(** A fresh suspended thread poised to invoke the program's [main]. The
    main frame is pushed (and [main]'s first-execution hook fired, if it
    has never run) on the first {!resume}. *)

val thread_id : thread -> int
(** Spawn-order identifier, unique within this VM. *)

val thread_depth : thread -> int
(** Physical frame count at the last suspension (0 before the first
    resume and after completion). *)

val thread_done : thread -> bool
(** Whether the thread has started and run [main] to completion. *)

val resume : ?cycle_limit:int -> t -> thread -> quantum:int -> thread_status
(** Execute the thread for at most [quantum] virtual cycles (timer hooks
    included), then suspend it. Returns [Done] when [main] returned.
    Raises [Invalid_argument] if [quantum <= 0], {!Cycle_limit_exceeded}
    if the shared clock passes [cycle_limit]. Must not be called
    re-entrantly (from within a VM hook). *)
