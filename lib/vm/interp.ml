open Acsi_bytecode

exception Runtime_error of string
exception Cycle_limit_exceeded

let rerr fmt = Format.kasprintf (fun msg -> raise (Runtime_error msg)) fmt

type frame = {
  mutable f_code : Code.t;
  mutable f_dcode : Dcode.t;
  mutable f_ncode : nfn array;
      (* closure-tier entry points, one per source pc ([Tier]); [[||]]
         means the frame executes on the interpreter tier *)
  mutable f_pc : int;
  mutable f_regs : Value.t array;
      (* locals in [0, f_base); operand stack grows from f_base up. One
         allocation per call instead of two — [f_sp] is an absolute index
         into [f_regs], so stack slot [i] lives at [f_base + i]. *)
  mutable f_base : int;
  mutable f_sp : int;  (* absolute; empty stack = f_base *)
}

and t = {
  program : Program.t;
  cost : Cost.t;
  fuse : bool;
  mutable cycles : int;
  globals : Value.t array;
  code_table : Code.t array;
  dcode_table : Dcode.t array;
  param_slots : int array;  (* per method, so [invoke] skips the Meth.t *)
  mutable frames : frame array;
  mutable depth : int;  (* live frames in [frames] *)
  mutable output_rev : int list;
  mutable instr_count : int;
  mutable call_count : int;
  mutable guard_hits : int;
  mutable guard_misses : int;
  mutable osr_up : int;  (* interpreter/baseline -> optimized transfers *)
  mutable osr_down : int;  (* optimized -> baseline deoptimizations *)
  mutable deopt_guard : int;  (* osr_down transfers caused by guard storms *)
  mutable deopt_invalidate : int;  (* ... caused by CHA invalidation *)
  executed : bool array;
  invocations : int array;
  (* Class loading, modeled as first instantiation: [class_loaded] flips
     once per class at its first [New], firing [on_class_load] — the
     invalidation hook speculative inlining hangs CHA proofs on. *)
  class_loaded : bool array;
  (* The initial (baseline) compilations, kept so deoptimization can
     reconstruct source frames even after [install_code] replaced a
     method's entry with optimized code. *)
  baseline_code : Code.t array;
  baseline_dcode : Dcode.t array;
  (* hooks *)
  mutable on_first_execution : Ids.Method_id.t -> unit;
  mutable on_invoke : t -> Ids.Method_id.t -> unit;
  mutable on_timer_sample : t -> unit;
  (* In-branch hooks: unlike the timer hook these fire *inside* an
     execution window (at a New / failed Guard, both of which settle the
     clock and restart the window unclipped). They may charge cycles but
     must never mutate the frame stack — the running frame's [f_pc]/[f_sp]
     are not saved at the firing point. Default no-ops. *)
  mutable on_class_load : t -> Ids.Class_id.t -> unit;
  mutable on_guard_miss : t -> Ids.Method_id.t -> int -> unit;
  sample_period : int;
  mutable next_sample : int;
  invoke_stride : int;
  mutable invoke_countdown : int;
  mutable next_thread_id : int;
  (* Windows never extend past this clock value: [max_int] outside a
     threaded slice, the quantum boundary inside one ([resume]). Both
     the driver loops and [continue_window]'s mid-window restarts clip
     to it, so preemption can only land where a timer check could. *)
  mutable window_end : int;
  (* Closure-tier ("native") code, parallel to [code_table]: entry
     closures per source pc, and the operand-stack entry depth the tier
     compiler assumed for each pc (checked on OSR transfer). An empty
     array means the method runs on the interpreter tier. *)
  native_table : nfn array array;
  native_depths : int array array;
  (* Per-tier host-time calibration: wall seconds and virtual cycles
     attributed per bucket (0 = interpreter-tier windows, 1 = closure-
     tier windows, 2 = timer hooks / AOS). Sampled at window granularity
     in the driver loops, so a window spanning a cross-tier call is
     attributed to the tier it entered on. Host time is nondeterministic
     by nature; nothing virtual ever reads these. *)
  mutable calibrate : bool;
  cal_cycles : int array;
  cal_host_s : float array;
  wst : wst;
}

(* A closure-tier entry point executes its frame from the pc the closure
   was compiled for, reading the execution state out of the VM's one
   [wst] record (populated by [exec_window]/[continue_window] just
   before dispatch). Closures take the record instead of six arguments
   because OCaml applies an unknown single-argument closure directly,
   while six arguments go through the [caml_apply6] shuffling stub on
   every link of every effect chain — measurably slower on the chains'
   hot path. *)
and nfn = wst -> unit

(* The closure tier's execution state, threaded through [nfn] chains by
   mutation. One record per VM: a window is entered, run and left before
   the driver dispatches the next one, and re-entrant dispatches (calls,
   returns, OSR restarts inside a window) each re-populate the fields
   before jumping, so no two live uses overlap. [w_rem] is the virtual
   cycles until the next timer check; [w_nin] the instructions executed
   but not yet settled (see [flush]). *)
and wst = {
  w_t : t;
  mutable w_fr : frame;
  mutable w_regs : Value.t array;
  mutable w_sp : int;  (* absolute, like [f_sp] *)
  mutable w_rem : int;
  mutable w_nin : int;
}

let cal_buckets = [| "interp"; "closure"; "system" |]

let max_call_depth = 200_000

(* --- deoptimization plans (built by [Acsi_deopt], executed here) --- *)

(* One source frame to reconstruct from (or consume into) an optimized
   frame. Plans are listed outermost-first; all offsets index the
   *optimized* frame's [f_regs]: the region's locals live at
   [dp_base, ...) and its operand-stack slice at
   [f_base + dp_stack_lo, f_base + dp_stack_lo + dp_stack_len).
   For every non-innermost plan, [dp_pc] is the call instruction the
   source frame is suspended at and [dp_stack_len] its residual stack
   depth *after* the arguments were popped — the exact invariant
   [invoke]/[Return] maintain for suspended callers. *)
type frame_plan = {
  dp_meth : Ids.Method_id.t;
  dp_pc : int;
  dp_base : int;
  dp_stack_lo : int;
  dp_stack_len : int;
}

type deopt_reason = Guard_storm | Cha_invalidated

let create ?(cost = Cost.default) ?(sample_period = 100_000)
    ?(invoke_stride = 2048) ?(fuse = true) program =
  let methods = Program.methods program in
  let code_table = Array.map (fun m -> Code.baseline cost m) methods in
  let dcode_table = Array.map (fun c -> Dcode.of_code ~fuse cost c) code_table in
  (* [w_fr] is populated by the window dispatchers before any closure
     can read it; until then it holds an unboxed dummy. *)
  let rec t =
    {
      program;
    cost;
    fuse;
    cycles = 0;
    globals = Array.make (max 1 (Program.global_count program)) Value.zero;
    code_table;
    dcode_table;
    param_slots = Array.map Meth.param_slots methods;
    frames = Array.make 0 (Obj.magic 0);
    depth = 0;
    output_rev = [];
    instr_count = 0;
    call_count = 0;
    guard_hits = 0;
    guard_misses = 0;
    osr_up = 0;
    osr_down = 0;
    deopt_guard = 0;
    deopt_invalidate = 0;
    executed = Array.make (Array.length methods) false;
    invocations = Array.make (Array.length methods) 0;
    class_loaded = Array.make (max 1 (Program.class_count program)) false;
    baseline_code = Array.copy code_table;
    baseline_dcode = Array.copy dcode_table;
    on_first_execution = (fun _ -> ());
    on_invoke = (fun _ _ -> ());
    on_timer_sample = (fun _ -> ());
    on_class_load = (fun _ _ -> ());
    on_guard_miss = (fun _ _ _ -> ());
    sample_period;
    next_sample = sample_period;
    invoke_stride;
    invoke_countdown = invoke_stride;
    next_thread_id = 0;
    window_end = max_int;
    native_table = Array.make (Array.length methods) [||];
    native_depths = Array.make (Array.length methods) [||];
    calibrate = false;
    cal_cycles = Array.make (Array.length cal_buckets) 0;
    cal_host_s = Array.make (Array.length cal_buckets) 0.0;
    wst;
  }
  and wst =
    {
      w_t = t;
      w_fr = (Obj.magic 0 : frame);
      w_regs = [||];
      w_sp = 0;
      w_rem = 0;
      w_nin = 0;
    }
  in
  t

let program t = t.program
let cost t = t.cost
let sample_period t = t.sample_period
let cycles t = t.cycles
let instructions_executed t = t.instr_count
let calls_executed t = t.call_count
let guard_hits t = t.guard_hits
let guard_misses t = t.guard_misses
let output t = List.rev t.output_rev

let install_code t (mid : Ids.Method_id.t) code =
  t.code_table.((mid :> int)) <- code;
  t.dcode_table.((mid :> int)) <- Dcode.of_code ~fuse:t.fuse t.cost code;
  (* Any previously compiled closure tier targeted the replaced code. *)
  t.native_table.((mid :> int)) <- [||];
  t.native_depths.((mid :> int)) <- [||]

let install_native t (mid : Ids.Method_id.t) ~fns ~entry_depths =
  if Array.length fns <> Array.length t.code_table.((mid :> int)).Code.instrs
  then invalid_arg "Interp.install_native: entry count mismatch";
  t.native_table.((mid :> int)) <- fns;
  t.native_depths.((mid :> int)) <- entry_depths

let native_installed t (mid : Ids.Method_id.t) =
  Array.length t.native_table.((mid :> int)) > 0

let code_of t (mid : Ids.Method_id.t) = t.code_table.((mid :> int))
let decoded_of t (mid : Ids.Method_id.t) = t.dcode_table.((mid :> int))
let was_executed t (mid : Ids.Method_id.t) = t.executed.((mid :> int))
let set_on_first_execution t f = t.on_first_execution <- f
let set_on_invoke t f = t.on_invoke <- f
let set_on_timer_sample t f = t.on_timer_sample <- f
let set_on_class_load t f = t.on_class_load <- f
let set_on_guard_miss t f = t.on_guard_miss <- f
let class_is_loaded t (cid : Ids.Class_id.t) = t.class_loaded.((cid :> int))
let baseline_code_of t (mid : Ids.Method_id.t) = t.baseline_code.((mid :> int))

(* First instantiation of a class = its load event. Out of line: the
   [New] branches only pay one array read on the hot path. *)
let note_class_load t (cid : Ids.Class_id.t) =
  if not (Array.unsafe_get t.class_loaded (cid :> int)) then begin
    t.class_loaded.((cid :> int)) <- true;
    t.on_class_load t cid
  end
let charge t cycles = t.cycles <- t.cycles + cycles
let stack_depth t = t.depth
let set_calibrate t on = t.calibrate <- on

let calibration t =
  Array.to_list
    (Array.mapi
       (fun i name -> (name, t.cal_cycles.(i), t.cal_host_s.(i)))
       cal_buckets)

let now_s = Unix.gettimeofday
let osr_count t = t.osr_up + t.osr_down
let osr_up t = t.osr_up
let osr_down t = t.osr_down
let deopt_guard_count t = t.deopt_guard
let deopt_invalidate_count t = t.deopt_invalidate
let invocation_count t (mid : Ids.Method_id.t) = t.invocations.((mid :> int))

(* On-stack replacement of the innermost frame: if it is executing stale
   code for [mid] at a root-level source pc that still exists in the
   currently installed code, transfer the frame. Only the top frame is
   eligible — outer frames are suspended at call sites whose replacement
   code may have inlined the callee, which would resume into the middle of
   an inline region with the wrong continuation. Root locals keep their
   slots (the expander maps them identically); the operand stack carries
   over because root-level source points have equal stack depth in both
   codes (both verify against the same source). *)
let osr t (mid : Ids.Method_id.t) =
  if t.depth = 0 then false
  else
    let fr = t.frames.(t.depth - 1) in
    let current = t.code_table.((mid :> int)) in
    if
      (not (Ids.Method_id.equal fr.f_code.Code.meth mid))
      || fr.f_code == current
    then false
    else
      let (src_m, src_pc), parents = Code.source_at fr.f_code ~pc:fr.f_pc in
      if (not (Ids.Method_id.equal src_m mid)) || parents <> [] || src_pc < 0
      then false
      else
        let target =
          match current.Code.src with
          | None -> if src_pc < Array.length current.Code.instrs then Some src_pc else None
          | Some entries ->
              let n = Array.length entries in
              let rec find pc =
                if pc >= n then None
                else
                  let e = entries.(pc) in
                  if
                    Ids.Method_id.equal e.Code.src_meth mid
                    && e.Code.src_pc = src_pc
                    && e.Code.parents = []
                  then Some pc
                  else find (pc + 1)
              in
              find 0
        in
        match target with
        | None -> false
        | Some pc' ->
            let sp_rel = fr.f_sp - fr.f_base in
            (* The target pc must expect exactly the operand-stack depth
               the suspended frame carries: the peephole optimizer can
               leave a root-level source entry on an instruction whose
               entry depth differs from the source pc's (constant
               folding keeps the consumer's entry), and transferring
               there would misalign the stack. *)
            let depth_ok =
              sp_rel <= current.Code.max_stack
              &&
              let root = Program.meth t.program mid in
              let wrapper =
                {
                  root with
                  Meth.body = current.Code.instrs;
                  max_locals = current.Code.max_locals;
                  max_stack = current.Code.max_stack;
                }
              in
              (Verify.entry_depths t.program wrapper).(pc') = sp_rel
            in
            if not depth_ok then false
            else begin
              (* When the target runs on the closure tier, the transfer
                 additionally lands on a compiled entry point: the entry
                 depth the tier compiler derived for [pc'] at install
                 time must agree with the depth the interpreter-side
                 verifier just derived — the frame layout (one array,
                 locals below [max_locals], stack above) is shared
                 between tiers only under that agreement. *)
              let nc = t.native_table.((mid :> int)) in
              if Array.length nc > 0 then begin
                let nd = t.native_depths.((mid :> int)) in
                if pc' >= Array.length nd || nd.(pc') <> sp_rel then
                  rerr
                    "osr: closure-tier entry depth mismatch at pc %d \
                     (interpreter expects %d)"
                    pc' sp_rel
              end;
              let base = current.Code.max_locals in
              let regs =
                Array.make (base + max 1 current.Code.max_stack) Value.zero
              in
              Array.blit fr.f_regs 0 regs 0 (min fr.f_base base);
              Array.blit fr.f_regs fr.f_base regs base sp_rel;
              fr.f_code <- current;
              fr.f_dcode <- t.dcode_table.((mid :> int));
              fr.f_ncode <- nc;
              fr.f_pc <- pc';
              fr.f_regs <- regs;
              fr.f_base <- base;
              fr.f_sp <- base + sp_rel;
              t.osr_up <- t.osr_up + 1;
              true
            end

(* Generalized upward transfer: replace the top [Array.length plans]
   baseline frames (outermost first, matching [plans]) by ONE optimized
   frame resuming at [pc] of the currently installed code for [mid]. The
   caller ([Acsi_deopt.try_osr_up]) has already checked that each live
   frame matches its plan (method, pc, stack depth) — this function only
   moves state. Locals of every source frame scatter to their region
   bases; operand-stack slices concatenate bottom-up above [max_locals],
   exactly inverting {!deopt_top_frame}. *)
let osr_into t (mid : Ids.Method_id.t) ~(plans : frame_plan array) ~pc =
  let k = Array.length plans in
  if k = 0 || t.depth < k then invalid_arg "Interp.osr_into: bad plan count";
  let code = t.code_table.((mid :> int)) in
  let base = code.Code.max_locals in
  let regs = Array.make (base + max 1 code.Code.max_stack) Value.zero in
  let sp_rel = ref 0 in
  Array.iteri
    (fun i p ->
      let sf = t.frames.(t.depth - k + i) in
      let nl = min sf.f_base (max 0 (base - p.dp_base)) in
      Array.blit sf.f_regs 0 regs p.dp_base nl;
      let slen = sf.f_sp - sf.f_base in
      Array.blit sf.f_regs sf.f_base regs (base + p.dp_stack_lo) slen;
      sp_rel := p.dp_stack_lo + slen)
    plans;
  let nc = t.native_table.((mid :> int)) in
  (if Array.length nc > 0 then begin
     (* Same cross-tier agreement check as {!osr}: landing on a compiled
        entry point requires the tier compiler's entry depth for [pc] to
        match the depth we just materialized. *)
     let nd = t.native_depths.((mid :> int)) in
     if pc >= Array.length nd || nd.(pc) <> !sp_rel then
       rerr "osr_into: closure-tier entry depth mismatch at pc %d" pc
   end);
  let fr = t.frames.(t.depth - k) in
  fr.f_code <- code;
  fr.f_dcode <- t.dcode_table.((mid :> int));
  fr.f_ncode <- nc;
  fr.f_pc <- pc;
  fr.f_regs <- regs;
  fr.f_base <- base;
  fr.f_sp <- base + !sp_rel;
  t.depth <- t.depth - k + 1;
  t.osr_up <- t.osr_up + 1

let walk_source_stack t ~f =
  let continue_ = ref true in
  let i = ref (t.depth - 1) in
  while !continue_ && !i >= 0 do
    let fr = t.frames.(!i) in
    let (m, pc), parents = Code.source_at fr.f_code ~pc:fr.f_pc in
    continue_ := f m pc;
    let rec parents_loop = function
      | [] -> ()
      | (caller, callsite) :: rest ->
          if !continue_ then begin
            continue_ := f caller callsite;
            parents_loop rest
          end
    in
    parents_loop parents;
    decr i
  done

(* --- frame stack management --- *)

(* Frames are freshly allocated per call on purpose: records and operand
   arrays born in the minor heap keep locals/stack stores on the cheap
   minor-to-minor write path and die young. (Reusing popped frames was
   tried and measured slower — long-lived frames get promoted, and every
   pointer store into them then pays the remembered-set barrier.) *)
let push_frame t code dcode ncode =
  (if t.depth = Array.length t.frames then begin
     let cap = max 64 (2 * t.depth) in
     let bigger =
       Array.make cap
         {
           f_code = code;
           f_dcode = dcode;
           f_ncode = [||];
           f_pc = 0;
           f_regs = [||];
           f_base = 0;
           f_sp = 0;
         }
     in
     Array.blit t.frames 0 bigger 0 t.depth;
     t.frames <- bigger
   end);
  if t.depth >= max_call_depth then rerr "call stack overflow";
  let base = code.Code.max_locals in
  let fr =
    {
      f_code = code;
      f_dcode = dcode;
      f_ncode = ncode;
      f_pc = 0;
      f_regs = Array.make (base + max 1 code.Code.max_stack) Value.zero;
      f_base = base;
      f_sp = base;
    }
  in
  t.frames.(t.depth) <- fr;
  t.depth <- t.depth + 1;
  fr

(* Deoptimize the innermost frame: replace one optimized frame by the
   stack of baseline frames its deopt point describes (outermost plan
   first, so the innermost source frame ends up on top). Only safe at an
   instruction boundary (a VM hook) — the optimized frame's [f_pc]/[f_sp]
   must be settled. Charges nothing: the caller accounts for the
   transfer ([Cost.deopt_frame] per reconstructed frame in the AOS). *)
let deopt_top_frame t ~(plans : frame_plan array) ~(reason : deopt_reason) =
  if t.depth = 0 || Array.length plans = 0 then
    invalid_arg "Interp.deopt_top_frame: nothing to transfer";
  let fr = t.frames.(t.depth - 1) in
  let opt_regs = fr.f_regs in
  let opt_base = fr.f_base in
  t.depth <- t.depth - 1;
  Array.iter
    (fun p ->
      let code = t.baseline_code.((p.dp_meth :> int)) in
      let dcode = t.baseline_dcode.((p.dp_meth :> int)) in
      let nfr = push_frame t code dcode [||] in
      let nl = min code.Code.max_locals (max 0 (opt_base - p.dp_base)) in
      Array.blit opt_regs p.dp_base nfr.f_regs 0 nl;
      Array.blit opt_regs (opt_base + p.dp_stack_lo) nfr.f_regs nfr.f_base
        p.dp_stack_len;
      nfr.f_pc <- p.dp_pc;
      nfr.f_sp <- nfr.f_base + p.dp_stack_len)
    plans;
  t.osr_down <- t.osr_down + 1;
  match reason with
  | Guard_storm -> t.deopt_guard <- t.deopt_guard + 1
  | Cha_invalidated -> t.deopt_invalidate <- t.deopt_invalidate + 1

(* --- helpers --- *)

let[@inline] as_int v =
  match (v : Value.t) with
  | Value.Int n -> n
  | Value.Null | Value.Obj _ | Value.Arr _ ->
      rerr "expected an integer, got %a" Value.pp v

let[@inline] as_obj v =
  match (v : Value.t) with
  | Value.Obj o -> o
  | Value.Null -> rerr "null dereference"
  | Value.Int _ | Value.Arr _ -> rerr "expected an object, got %a" Value.pp v

let[@inline] as_arr v =
  match (v : Value.t) with
  | Value.Arr a -> a
  | Value.Null -> rerr "null array dereference"
  | Value.Int _ | Value.Obj _ -> rerr "expected an array, got %a" Value.pp v

let[@inline] eval_binop op a b =
  match (op : Instr.binop) with
  | Instr.Add -> a + b
  | Instr.Sub -> a - b
  | Instr.Mul -> a * b
  | Instr.Div -> if b = 0 then rerr "division by zero" else a / b
  | Instr.Rem -> if b = 0 then rerr "remainder by zero" else a mod b
  | Instr.And -> a land b
  | Instr.Or -> a lor b
  | Instr.Xor -> a lxor b
  | Instr.Shl -> a lsl (b land 63)
  | Instr.Shr -> a asr (b land 63)

let[@inline] eval_cmp c a b =
  let r =
    match (c : Instr.cmp) with
    | Instr.Eq -> Value.equal_cmp a b
    | Instr.Ne -> not (Value.equal_cmp a b)
    | Instr.Lt -> as_int a < as_int b
    | Instr.Le -> as_int a <= as_int b
    | Instr.Gt -> as_int a > as_int b
    | Instr.Ge -> as_int a >= as_int b
  in
  if r then 1 else 0

(* --- execution --- *)

let invoke t (mid : Ids.Method_id.t) =
  t.call_count <- t.call_count + 1;
  t.invocations.((mid :> int)) <- t.invocations.((mid :> int)) + 1;
  if not t.executed.((mid :> int)) then begin
    t.executed.((mid :> int)) <- true;
    t.on_first_execution mid
  end;
  let code = t.code_table.((mid :> int)) in
  (* Frame setup cost depends on the callee's prologue quality. *)
  t.cycles <-
    t.cycles
    + (match code.Code.tier with
      | Code.Baseline -> t.cost.Cost.call
      | Code.Optimized -> t.cost.Cost.opt_call);
  let fr =
    push_frame t code
      t.dcode_table.((mid :> int))
      t.native_table.((mid :> int))
  in
  (* Pop arguments from the caller's stack into the callee's locals.
     Unsafe accesses are bounded by the verifier: a call site's arguments
     are on the caller's operand stack ([f_sp >= f_base + nslots]) and
     parameter slots fit the callee's locals ([nslots <= max_locals]). *)
  let caller = t.frames.(t.depth - 2) in
  let nslots = t.param_slots.((mid :> int)) in
  for k = nslots - 1 downto 0 do
    caller.f_sp <- caller.f_sp - 1;
    Array.unsafe_set fr.f_regs k (Array.unsafe_get caller.f_regs caller.f_sp)
  done;
  t.invoke_countdown <- t.invoke_countdown - 1;
  if t.invoke_countdown <= 0 then begin
    t.invoke_countdown <- t.invoke_stride;
    t.on_invoke t mid
  end

let dispatch_target t (recv : Value.t) sel =
  let o = as_obj recv in
  match Program.dispatch t.program o.Value.cls sel with
  | Some mid -> mid
  | None ->
      rerr "no implementation of %s on class %s"
        (Program.selector_name t.program sel)
        (Program.clazz t.program o.Value.cls).Clazz.name

(* Execute up to [budget] source instructions of the top frame without
   re-checking the virtual timer. The budget is computed so that the
   skipped checks are provably no-ops (see [run]); any instruction whose
   charge exceeds the frame's per-dispatch cost ends the window, because
   only the uniform per-dispatch cost was accounted for when the budget
   was sized.

   [pc] and [sp] live in locals (function arguments of a tail-recursive
   loop) and are flushed back to the frame at every window exit and before
   anything that can observe or mutate the frame (calls, returns, guards,
   allocations — all of which also end the window). Operand-stack and
   locals accesses use unsafe reads/writes: every executed [Code.t] has
   passed the bytecode verifier (the front end and the inline expander
   both verify), which bounds them by [max_stack]/[max_locals]. *)
(* Window accounting: [remaining] is the number of virtual cycles until
   the next timer check ([t.next_sample - t.cycles], kept in a register),
   and [ninstr] counts source instructions executed in the current frame
   since the last settlement. Counters are settled in one step ("flush")
   whenever an instruction charges anything beyond the frame's uniform
   per-dispatch cost, or when the window ends — each of the [ninstr]
   deferred instructions charged exactly [icost], so the clock can be
   reconstructed exactly. Nothing observes the clock mid-window (hooks
   only fire between windows), except an escaping [Runtime_error] — which
   aborts the run, so the lag is unobservable; [run_reference] keeps exact
   per-instruction accounting on that path. *)
let[@inline] flush t icost ninstr =
  t.instr_count <- t.instr_count + ninstr;
  t.cycles <- t.cycles + (ninstr * icost)

(* The window loop is a top-level function — every piece of hot state
   (decoded stream, per-dispatch cost, operand stack, locals) rides in the
   argument registers of the tail call instead of a per-window closure
   environment. Calls, returns, guards and allocations settle the
   counters, apply their extra charges, and *continue* in the (possibly
   new) top frame as long as the timer is not due, so the loop only
   returns to the driver when a sample must actually be considered. *)
let rec step t fr ops icost stack locals pc sp remaining ninstr =
  if remaining <= 0 then begin
    flush t icost ninstr;
    fr.f_pc <- pc;
    fr.f_sp <- sp
  end
  else begin
    match Array.unsafe_get ops pc with
    | Dcode.Const v ->
        Array.unsafe_set stack sp v;
        step t fr ops icost stack locals (pc + 1) (sp + 1) (remaining - icost)
          (ninstr + 1)
    | Dcode.Load i ->
        Array.unsafe_set stack sp (Array.unsafe_get locals i);
        step t fr ops icost stack locals (pc + 1) (sp + 1) (remaining - icost)
          (ninstr + 1)
    | Dcode.Store i ->
        let sp = sp - 1 in
        Array.unsafe_set locals i (Array.unsafe_get stack sp);
        step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
          (ninstr + 1)
    | Dcode.Dup ->
        Array.unsafe_set stack sp (Array.unsafe_get stack (sp - 1));
        step t fr ops icost stack locals (pc + 1) (sp + 1) (remaining - icost)
          (ninstr + 1)
    | Dcode.Pop ->
        step t fr ops icost stack locals (pc + 1) (sp - 1) (remaining - icost)
          (ninstr + 1)
    | Dcode.Swap ->
        let a = Array.unsafe_get stack (sp - 1) in
        Array.unsafe_set stack (sp - 1) (Array.unsafe_get stack (sp - 2));
        Array.unsafe_set stack (sp - 2) a;
        step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
          (ninstr + 1)
    | Dcode.Binop op ->
        let b = as_int (Array.unsafe_get stack (sp - 1)) in
        let a = as_int (Array.unsafe_get stack (sp - 2)) in
        let sp = sp - 1 in
        Array.unsafe_set stack (sp - 1) (Value.of_int (eval_binop op a b));
        step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
          (ninstr + 1)
    | Dcode.Neg ->
        Array.unsafe_set stack (sp - 1)
          (Value.of_int (-as_int (Array.unsafe_get stack (sp - 1))));
        step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
          (ninstr + 1)
    | Dcode.Not ->
        Array.unsafe_set stack (sp - 1)
          (Value.of_bool (not (Value.truthy (Array.unsafe_get stack (sp - 1)))));
        step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
          (ninstr + 1)
    | Dcode.Cmp c ->
        let b = Array.unsafe_get stack (sp - 1) in
        let a = Array.unsafe_get stack (sp - 2) in
        let sp = sp - 1 in
        Array.unsafe_set stack (sp - 1) (Value.of_int (eval_cmp c a b));
        step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
          (ninstr + 1)
    | Dcode.Jump target ->
        step t fr ops icost stack locals target sp (remaining - icost)
          (ninstr + 1)
    | Dcode.Jump_if target ->
        let sp = sp - 1 in
        if Value.truthy (Array.unsafe_get stack sp) then
          step t fr ops icost stack locals target sp (remaining - icost)
            (ninstr + 1)
        else
          step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
            (ninstr + 1)
    | Dcode.Jump_ifnot target ->
        let sp = sp - 1 in
        if Value.truthy (Array.unsafe_get stack sp) then
          step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
            (ninstr + 1)
        else
          step t fr ops icost stack locals target sp (remaining - icost)
            (ninstr + 1)
    | Dcode.New cid ->
        flush t icost (ninstr + 1);
        t.cycles <- t.cycles + t.cost.Cost.alloc;
        note_class_load t cid;
        Array.unsafe_set stack sp (Value.alloc t.program cid);
        step t fr ops icost stack locals (pc + 1) (sp + 1)
          (t.next_sample - t.cycles) 0
    | Dcode.Get_field i ->
        let o = as_obj (Array.unsafe_get stack (sp - 1)) in
        Array.unsafe_set stack (sp - 1) o.Value.fields.(i);
        step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
          (ninstr + 1)
    | Dcode.Put_field i ->
        let v = Array.unsafe_get stack (sp - 1) in
        let o = as_obj (Array.unsafe_get stack (sp - 2)) in
        o.Value.fields.(i) <- v;
        step t fr ops icost stack locals (pc + 1) (sp - 2) (remaining - icost)
          (ninstr + 1)
    | Dcode.Get_global i ->
        Array.unsafe_set stack sp t.globals.(i);
        step t fr ops icost stack locals (pc + 1) (sp + 1) (remaining - icost)
          (ninstr + 1)
    | Dcode.Put_global i ->
        let sp = sp - 1 in
        t.globals.(i) <- Array.unsafe_get stack sp;
        step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
          (ninstr + 1)
    | Dcode.Array_new ->
        let n = as_int (Array.unsafe_get stack (sp - 1)) in
        if n < 0 then rerr "negative array size %d" n;
        flush t icost (ninstr + 1);
        t.cycles <-
          t.cycles + t.cost.Cost.alloc + (n * t.cost.Cost.alloc_array_word);
        Array.unsafe_set stack (sp - 1) (Value.Arr (Array.make n Value.zero));
        step t fr ops icost stack locals (pc + 1) sp
          (t.next_sample - t.cycles) 0
    | Dcode.Array_get ->
        let i = as_int (Array.unsafe_get stack (sp - 1)) in
        let a = as_arr (Array.unsafe_get stack (sp - 2)) in
        if i < 0 || i >= Array.length a then
          rerr "array index %d out of bounds (length %d)" i (Array.length a);
        let sp = sp - 1 in
        Array.unsafe_set stack (sp - 1) (Array.unsafe_get a i);
        step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
          (ninstr + 1)
    | Dcode.Array_set ->
        let v = Array.unsafe_get stack (sp - 1) in
        let i = as_int (Array.unsafe_get stack (sp - 2)) in
        let a = as_arr (Array.unsafe_get stack (sp - 3)) in
        if i < 0 || i >= Array.length a then
          rerr "array index %d out of bounds (length %d)" i (Array.length a);
        Array.unsafe_set a i v;
        step t fr ops icost stack locals (pc + 1) (sp - 3) (remaining - icost)
          (ninstr + 1)
    | Dcode.Array_len ->
        let a = as_arr (Array.unsafe_get stack (sp - 1)) in
        Array.unsafe_set stack (sp - 1) (Value.of_int (Array.length a));
        step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
          (ninstr + 1)
    | Dcode.Call mid ->
        flush t icost (ninstr + 1);
        fr.f_pc <- pc;
        fr.f_sp <- sp;
        invoke t mid;
        continue_window t
    | Dcode.Call_virtual (sel, argc) ->
        flush t icost (ninstr + 1);
        t.cycles <- t.cycles + t.cost.Cost.virtual_dispatch;
        fr.f_pc <- pc;
        fr.f_sp <- sp;
        let recv = Array.unsafe_get stack (sp - 1 - argc) in
        invoke t (dispatch_target t recv sel);
        continue_window t
    | Dcode.Guard g ->
        flush t icost (ninstr + 1);
        t.cycles <- t.cycles + t.cost.Cost.guard;
        let recv = Array.unsafe_get stack (sp - 1 - g.Instr.argc) in
        let ok =
          match recv with
          | Value.Obj o -> (
              match Program.dispatch t.program o.Value.cls g.Instr.sel with
              | Some target -> Ids.Method_id.equal target g.Instr.expected
              | None -> false)
          | Value.Null | Value.Int _ | Value.Arr _ -> false
        in
        let pc =
          if ok then begin
            t.guard_hits <- t.guard_hits + 1;
            pc + 1
          end
          else begin
            t.guard_misses <- t.guard_misses + 1;
            t.on_guard_miss t fr.f_code.Code.meth pc;
            g.Instr.fail
          end
        in
        step t fr ops icost stack locals pc sp (t.next_sample - t.cycles) 0
    | Dcode.Return ->
        flush t icost (ninstr + 1);
        let result = Array.unsafe_get stack (sp - 1) in
        t.depth <- t.depth - 1;
        if t.depth > 0 then begin
          let caller = t.frames.(t.depth - 1) in
          caller.f_regs.(caller.f_sp) <- result;
          caller.f_sp <- caller.f_sp + 1;
          caller.f_pc <- caller.f_pc + 1;
          continue_window t
        end
    | Dcode.Return_void ->
        flush t icost (ninstr + 1);
        t.depth <- t.depth - 1;
        if t.depth > 0 then begin
          let caller = t.frames.(t.depth - 1) in
          caller.f_pc <- caller.f_pc + 1;
          continue_window t
        end
    | Dcode.Instance_of cid ->
        let r =
          match Array.unsafe_get stack (sp - 1) with
          | Value.Obj o ->
              Program.is_subclass t.program ~sub:o.Value.cls ~super:cid
          | Value.Null | Value.Int _ | Value.Arr _ -> false
        in
        Array.unsafe_set stack (sp - 1) (Value.of_bool r);
        step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
          (ninstr + 1)
    | Dcode.Print_int ->
        let sp = sp - 1 in
        t.output_rev <- as_int (Array.unsafe_get stack sp) :: t.output_rev;
        step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
          (ninstr + 1)
    | Dcode.Nop ->
        step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
          (ninstr + 1)
    (* --- superinstructions; a fused fast path runs only when the timer
       cannot become due before its last component
       ([remaining > (width - 1) * icost]); otherwise it falls back to its
       first component, so timer events land on exactly the same
       instruction boundaries as under naive decoding --- *)
    | Dcode.Load2_binop (i, j, op) ->
        if remaining > 2 * icost then begin
          let b = as_int (Array.unsafe_get locals j) in
          let a = as_int (Array.unsafe_get locals i) in
          Array.unsafe_set stack sp (Value.of_int (eval_binop op a b));
          step t fr ops icost stack locals (pc + 3) (sp + 1)
            (remaining - (3 * icost))
            (ninstr + 3)
        end
        else begin
          Array.unsafe_set stack sp (Array.unsafe_get locals i);
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Load_const_binop (i, n, op) ->
        if remaining > 2 * icost then begin
          let a = as_int (Array.unsafe_get locals i) in
          Array.unsafe_set stack sp (Value.of_int (eval_binop op a n));
          step t fr ops icost stack locals (pc + 3) (sp + 1)
            (remaining - (3 * icost))
            (ninstr + 3)
        end
        else begin
          Array.unsafe_set stack sp (Array.unsafe_get locals i);
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Load2_binop_store (i, j, op, d) ->
        if remaining > 3 * icost then begin
          let b = as_int (Array.unsafe_get locals j) in
          let a = as_int (Array.unsafe_get locals i) in
          Array.unsafe_set locals d (Value.of_int (eval_binop op a b));
          step t fr ops icost stack locals (pc + 4) sp
            (remaining - (4 * icost))
            (ninstr + 4)
        end
        else begin
          Array.unsafe_set stack sp (Array.unsafe_get locals i);
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Load_const_binop_store (i, n, op, d) ->
        if remaining > 3 * icost then begin
          let a = as_int (Array.unsafe_get locals i) in
          Array.unsafe_set locals d (Value.of_int (eval_binop op a n));
          step t fr ops icost stack locals (pc + 4) sp
            (remaining - (4 * icost))
            (ninstr + 4)
        end
        else begin
          Array.unsafe_set stack sp (Array.unsafe_get locals i);
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Load_getfield_store (i, f, d) ->
        if remaining > 2 * icost then begin
          let o = as_obj (Array.unsafe_get locals i) in
          Array.unsafe_set locals d o.Value.fields.(f);
          step t fr ops icost stack locals (pc + 3) sp
            (remaining - (3 * icost))
            (ninstr + 3)
        end
        else begin
          Array.unsafe_set stack sp (Array.unsafe_get locals i);
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Load2_cmp_jumpifnot (i, j, c, target) ->
        if remaining > 3 * icost then begin
          let r =
            eval_cmp c (Array.unsafe_get locals i) (Array.unsafe_get locals j)
          in
          if r <> 0 then
            step t fr ops icost stack locals (pc + 4) sp
              (remaining - (4 * icost))
              (ninstr + 4)
          else
            step t fr ops icost stack locals target sp
              (remaining - (4 * icost))
              (ninstr + 4)
        end
        else begin
          Array.unsafe_set stack sp (Array.unsafe_get locals i);
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Load_const_cmp_jumpifnot (i, v, c, target) ->
        if remaining > 3 * icost then begin
          let r = eval_cmp c (Array.unsafe_get locals i) v in
          if r <> 0 then
            step t fr ops icost stack locals (pc + 4) sp
              (remaining - (4 * icost))
              (ninstr + 4)
          else
            step t fr ops icost stack locals target sp
              (remaining - (4 * icost))
              (ninstr + 4)
        end
        else begin
          Array.unsafe_set stack sp (Array.unsafe_get locals i);
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Load_store (i, j) ->
        if remaining > icost then begin
          Array.unsafe_set locals j (Array.unsafe_get locals i);
          step t fr ops icost stack locals (pc + 2) sp
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          Array.unsafe_set stack sp (Array.unsafe_get locals i);
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Const_store (v, j) ->
        if remaining > icost then begin
          Array.unsafe_set locals j v;
          step t fr ops icost stack locals (pc + 2) sp
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          Array.unsafe_set stack sp v;
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Load_getfield (i, f) ->
        if remaining > icost then begin
          let o = as_obj (Array.unsafe_get locals i) in
          Array.unsafe_set stack sp o.Value.fields.(f);
          step t fr ops icost stack locals (pc + 2) (sp + 1)
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          Array.unsafe_set stack sp (Array.unsafe_get locals i);
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Load2 (i, j) ->
        if remaining > icost then begin
          Array.unsafe_set stack sp (Array.unsafe_get locals i);
          Array.unsafe_set stack (sp + 1) (Array.unsafe_get locals j);
          step t fr ops icost stack locals (pc + 2) (sp + 2)
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          Array.unsafe_set stack sp (Array.unsafe_get locals i);
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Cmp_jumpifnot (c, target) ->
        let b = Array.unsafe_get stack (sp - 1) in
        let a = Array.unsafe_get stack (sp - 2) in
        if remaining > icost then begin
          let sp = sp - 2 in
          if eval_cmp c a b <> 0 then
            step t fr ops icost stack locals (pc + 2) sp
              (remaining - (2 * icost))
              (ninstr + 2)
          else
            step t fr ops icost stack locals target sp
              (remaining - (2 * icost))
              (ninstr + 2)
        end
        else begin
          let sp = sp - 1 in
          Array.unsafe_set stack (sp - 1) (Value.of_int (eval_cmp c a b));
          step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
            (ninstr + 1)
        end
    | Dcode.Cmp_jumpif (c, target) ->
        let b = Array.unsafe_get stack (sp - 1) in
        let a = Array.unsafe_get stack (sp - 2) in
        if remaining > icost then begin
          let sp = sp - 2 in
          if eval_cmp c a b <> 0 then
            step t fr ops icost stack locals target sp
              (remaining - (2 * icost))
              (ninstr + 2)
          else
            step t fr ops icost stack locals (pc + 2) sp
              (remaining - (2 * icost))
              (ninstr + 2)
        end
        else begin
          let sp = sp - 1 in
          Array.unsafe_set stack (sp - 1) (Value.of_int (eval_cmp c a b));
          step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
            (ninstr + 1)
        end
    | Dcode.Binop_store (op, j) ->
        let b = as_int (Array.unsafe_get stack (sp - 1)) in
        let a = as_int (Array.unsafe_get stack (sp - 2)) in
        if remaining > icost then begin
          Array.unsafe_set locals j (Value.of_int (eval_binop op a b));
          step t fr ops icost stack locals (pc + 2) (sp - 2)
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          let sp = sp - 1 in
          Array.unsafe_set stack (sp - 1) (Value.of_int (eval_binop op a b));
          step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
            (ninstr + 1)
        end
    | Dcode.Const_binop (n, op) ->
        if remaining > icost then begin
          (* the constant is the top operand [b]; it is an [Int] by
             construction, so only [a] needs the dynamic check *)
          let a = as_int (Array.unsafe_get stack (sp - 1)) in
          Array.unsafe_set stack (sp - 1) (Value.of_int (eval_binop op a n));
          step t fr ops icost stack locals (pc + 2) sp
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          Array.unsafe_set stack sp (Value.of_int n);
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Store_load (i, j) ->
        if remaining > icost then begin
          Array.unsafe_set locals i (Array.unsafe_get stack (sp - 1));
          Array.unsafe_set stack (sp - 1) (Array.unsafe_get locals j);
          step t fr ops icost stack locals (pc + 2) sp
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          let sp = sp - 1 in
          Array.unsafe_set locals i (Array.unsafe_get stack sp);
          step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
            (ninstr + 1)
        end
    | Dcode.Store_store (i, j) ->
        if remaining > icost then begin
          Array.unsafe_set locals i (Array.unsafe_get stack (sp - 1));
          Array.unsafe_set locals j (Array.unsafe_get stack (sp - 2));
          step t fr ops icost stack locals (pc + 2) (sp - 2)
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          let sp = sp - 1 in
          Array.unsafe_set locals i (Array.unsafe_get stack sp);
          step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
            (ninstr + 1)
        end
    | Dcode.Store_jump (i, target) ->
        if remaining > icost then begin
          Array.unsafe_set locals i (Array.unsafe_get stack (sp - 1));
          step t fr ops icost stack locals target (sp - 1)
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          let sp = sp - 1 in
          Array.unsafe_set locals i (Array.unsafe_get stack sp);
          step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
            (ninstr + 1)
        end
    | Dcode.Getfield_load (f, j) ->
        let o = as_obj (Array.unsafe_get stack (sp - 1)) in
        if remaining > icost then begin
          Array.unsafe_set stack (sp - 1) o.Value.fields.(f);
          Array.unsafe_set stack sp (Array.unsafe_get locals j);
          step t fr ops icost stack locals (pc + 2) (sp + 1)
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          Array.unsafe_set stack (sp - 1) o.Value.fields.(f);
          step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
            (ninstr + 1)
        end
    | Dcode.Load_binop (i, op) ->
        if remaining > icost then begin
          (* the loaded local is the top operand [b] of the binop *)
          let b = as_int (Array.unsafe_get locals i) in
          let a = as_int (Array.unsafe_get stack (sp - 1)) in
          Array.unsafe_set stack (sp - 1) (Value.of_int (eval_binop op a b));
          step t fr ops icost stack locals (pc + 2) sp
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          Array.unsafe_set stack sp (Array.unsafe_get locals i);
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Load_cmp (i, c) ->
        if remaining > icost then begin
          let b = Array.unsafe_get locals i in
          let a = Array.unsafe_get stack (sp - 1) in
          Array.unsafe_set stack (sp - 1) (Value.of_int (eval_cmp c a b));
          step t fr ops icost stack locals (pc + 2) sp
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          Array.unsafe_set stack sp (Array.unsafe_get locals i);
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Load_arrayget i ->
        if remaining > icost then begin
          let idx = as_int (Array.unsafe_get locals i) in
          let a = as_arr (Array.unsafe_get stack (sp - 1)) in
          if idx < 0 || idx >= Array.length a then
            rerr "array index %d out of bounds (length %d)" idx
              (Array.length a);
          Array.unsafe_set stack (sp - 1) (Array.unsafe_get a idx);
          step t fr ops icost stack locals (pc + 2) sp
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          Array.unsafe_set stack sp (Array.unsafe_get locals i);
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Binop_const (op, v) ->
        let b = as_int (Array.unsafe_get stack (sp - 1)) in
        let a = as_int (Array.unsafe_get stack (sp - 2)) in
        if remaining > icost then begin
          Array.unsafe_set stack (sp - 2) (Value.of_int (eval_binop op a b));
          Array.unsafe_set stack (sp - 1) v;
          step t fr ops icost stack locals (pc + 2) sp
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          let sp = sp - 1 in
          Array.unsafe_set stack (sp - 1) (Value.of_int (eval_binop op a b));
          step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
            (ninstr + 1)
        end
    | Dcode.Binop_binop (op1, op2) ->
        let b = as_int (Array.unsafe_get stack (sp - 1)) in
        let a = as_int (Array.unsafe_get stack (sp - 2)) in
        if remaining > icost then begin
          (* the first result is the (always-Int) top operand of the
             second binop, so it never needs boxing *)
          let r1 = eval_binop op1 a b in
          let a2 = as_int (Array.unsafe_get stack (sp - 3)) in
          Array.unsafe_set stack (sp - 3)
            (Value.of_int (eval_binop op2 a2 r1));
          step t fr ops icost stack locals (pc + 2) (sp - 2)
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          let sp = sp - 1 in
          Array.unsafe_set stack (sp - 1) (Value.of_int (eval_binop op1 a b));
          step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
            (ninstr + 1)
        end
    | Dcode.Const_cmp (v, c) ->
        if remaining > icost then begin
          let a = Array.unsafe_get stack (sp - 1) in
          Array.unsafe_set stack (sp - 1) (Value.of_int (eval_cmp c a v));
          step t fr ops icost stack locals (pc + 2) sp
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          Array.unsafe_set stack sp v;
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
    | Dcode.Arrayget_store j ->
        let idx = as_int (Array.unsafe_get stack (sp - 1)) in
        let a = as_arr (Array.unsafe_get stack (sp - 2)) in
        if idx < 0 || idx >= Array.length a then
          rerr "array index %d out of bounds (length %d)" idx (Array.length a);
        if remaining > icost then begin
          Array.unsafe_set locals j (Array.unsafe_get a idx);
          step t fr ops icost stack locals (pc + 2) (sp - 2)
            (remaining - (2 * icost))
            (ninstr + 2)
        end
        else begin
          let sp = sp - 1 in
          Array.unsafe_set stack (sp - 1) (Array.unsafe_get a idx);
          step t fr ops icost stack locals (pc + 1) sp (remaining - icost)
            (ninstr + 1)
        end
    | Dcode.Load_jumpifnot (i, target) ->
        if remaining > icost then begin
          if Value.truthy (Array.unsafe_get locals i) then
            step t fr ops icost stack locals (pc + 2) sp
              (remaining - (2 * icost))
              (ninstr + 2)
          else
            step t fr ops icost stack locals target sp
              (remaining - (2 * icost))
              (ninstr + 2)
        end
        else begin
          Array.unsafe_set stack sp (Array.unsafe_get locals i);
          step t fr ops icost stack locals (pc + 1) (sp + 1)
            (remaining - icost) (ninstr + 1)
        end
  end

(* Resume execution after a frame switch (call or return): as long as the
   timer is not due, keep interpreting the new top frame in the same
   window instead of bouncing through the driver loop. *)
and continue_window t =
  if t.depth > 0 then begin
    let limit =
      if t.window_end < t.next_sample then t.window_end else t.next_sample
    in
    let remaining = limit - t.cycles in
    if remaining > 0 then begin
      let fr = t.frames.(t.depth - 1) in
      let nc = fr.f_ncode in
      if Array.length nc = 0 then
        let dc = fr.f_dcode in
        step t fr dc.Dcode.ops dc.Dcode.icost fr.f_regs fr.f_regs fr.f_pc
          fr.f_sp remaining 0
      else begin
        let st = t.wst in
        st.w_fr <- fr;
        st.w_regs <- fr.f_regs;
        st.w_sp <- fr.f_sp;
        st.w_rem <- remaining;
        st.w_nin <- 0;
        (Array.unsafe_get nc fr.f_pc) st
      end
    end
  end

let exec_window t fr remaining =
  let nc = fr.f_ncode in
  if Array.length nc = 0 then
    let dc = fr.f_dcode in
    step t fr dc.Dcode.ops dc.Dcode.icost fr.f_regs fr.f_regs fr.f_pc
      fr.f_sp remaining 0
  else begin
    let st = t.wst in
    st.w_fr <- fr;
    st.w_regs <- fr.f_regs;
    st.w_sp <- fr.f_sp;
    st.w_rem <- remaining;
    st.w_nin <- 0;
    (Array.unsafe_get nc fr.f_pc) st
  end

(* The driver. The naive interpreter compares [cycles >= next_sample]
   before every instruction; here the check runs once per *window*, whose
   size (in source instructions) is chosen so every skipped check is
   provably false: within a window each instruction charges exactly the
   frame's per-dispatch cost [icost], so after [k] instructions the clock
   has advanced exactly [k * icost], and
   [ceil((next_sample - cycles) / icost)] instructions fit before the
   clock can reach [next_sample]. Instructions with additional charges
   (calls, returns across tiers, allocations, guards) end the window
   early, restoring the check before the next instruction — i.e. hooks
   fire at bit-identical cycle counts, in bit-identical VM states, as
   under the naive loop. *)
(* Calibrated variants of the two driver-loop steps: same calls in the
   same order, additionally attributing the wall-time and virtual-cycle
   deltas to a bucket. Kept out of line so the uncalibrated loops stay
   branch-free beyond one flag test per window. *)
let timer_hook t =
  if t.calibrate then begin
    let c0 = t.cycles and h0 = now_s () in
    t.on_timer_sample t;
    t.cal_cycles.(2) <- t.cal_cycles.(2) + (t.cycles - c0);
    t.cal_host_s.(2) <- t.cal_host_s.(2) +. (now_s () -. h0)
  end
  else t.on_timer_sample t

let exec_window_calibrated t fr budget =
  let b = if Array.length fr.f_ncode = 0 then 0 else 1 in
  let c0 = t.cycles and h0 = now_s () in
  exec_window t fr budget;
  t.cal_cycles.(b) <- t.cal_cycles.(b) + (t.cycles - c0);
  t.cal_host_s.(b) <- t.cal_host_s.(b) +. (now_s () -. h0)

let run ?(cycle_limit = max_int) t =
  let main = Program.main t.program in
  t.executed.((main :> int)) <- true;
  t.on_first_execution main;
  ignore
    (push_frame t
       t.code_table.((main :> int))
       t.dcode_table.((main :> int))
       t.native_table.((main :> int)));
  t.call_count <- t.call_count + 1;
  while t.depth > 0 do
    (* The timer fires before the fetch: hooks may install code or
       on-stack-replace the top frame, so nothing is cached across
       them. *)
    if t.cycles >= t.next_sample then begin
      t.next_sample <- t.next_sample + t.sample_period;
      if t.cycles > cycle_limit then raise Cycle_limit_exceeded;
      timer_hook t
    end;
    let fr = t.frames.(t.depth - 1) in
    let gap = t.next_sample - t.cycles in
    (* Even when the clock already passed [next_sample] again (an AOS
       hook can charge more than a whole period), the naive loop still
       executes one instruction between consecutive checks — a 1-cycle
       window admits exactly one instruction, every charge being >= 1. *)
    let budget = if gap <= 0 then 1 else gap in
    if t.calibrate then exec_window_calibrated t fr budget
    else exec_window t fr budget
  done

(* The naive instruction-at-a-time loop, kept verbatim as the executable
   specification of the interpreter: [run] must be observationally
   identical (cycles, output, counters, hook timing). The differential
   property tests in the test suite run both on random programs. *)
let run_reference ?(cycle_limit = max_int) t =
  let main = Program.main t.program in
  t.executed.((main :> int)) <- true;
  t.on_first_execution main;
  ignore
    (push_frame t
       t.code_table.((main :> int))
       t.dcode_table.((main :> int))
       t.native_table.((main :> int)));
  t.call_count <- t.call_count + 1;
  let base_cost = t.cost.Cost.baseline_instr in
  let opt_cost = t.cost.Cost.opt_instr in
  while t.depth > 0 do
    if t.cycles >= t.next_sample then begin
      t.next_sample <- t.next_sample + t.sample_period;
      if t.cycles > cycle_limit then raise Cycle_limit_exceeded;
      t.on_timer_sample t
    end;
    let fr = t.frames.(t.depth - 1) in
    let instr = fr.f_code.Code.instrs.(fr.f_pc) in
    t.instr_count <- t.instr_count + 1;
    t.cycles <-
      t.cycles
      + (match fr.f_code.Code.tier with
        | Code.Baseline -> base_cost
        | Code.Optimized -> opt_cost);
    let stack = fr.f_regs in
    (match instr with
    | Instr.Const n ->
        stack.(fr.f_sp) <- Value.Int n;
        fr.f_sp <- fr.f_sp + 1;
        fr.f_pc <- fr.f_pc + 1
    | Instr.Const_null ->
        stack.(fr.f_sp) <- Value.Null;
        fr.f_sp <- fr.f_sp + 1;
        fr.f_pc <- fr.f_pc + 1
    | Instr.Load i ->
        stack.(fr.f_sp) <- fr.f_regs.(i);
        fr.f_sp <- fr.f_sp + 1;
        fr.f_pc <- fr.f_pc + 1
    | Instr.Store i ->
        fr.f_sp <- fr.f_sp - 1;
        fr.f_regs.(i) <- stack.(fr.f_sp);
        fr.f_pc <- fr.f_pc + 1
    | Instr.Dup ->
        stack.(fr.f_sp) <- stack.(fr.f_sp - 1);
        fr.f_sp <- fr.f_sp + 1;
        fr.f_pc <- fr.f_pc + 1
    | Instr.Pop ->
        fr.f_sp <- fr.f_sp - 1;
        fr.f_pc <- fr.f_pc + 1
    | Instr.Swap ->
        let a = stack.(fr.f_sp - 1) in
        stack.(fr.f_sp - 1) <- stack.(fr.f_sp - 2);
        stack.(fr.f_sp - 2) <- a;
        fr.f_pc <- fr.f_pc + 1
    | Instr.Binop op ->
        let b = as_int stack.(fr.f_sp - 1) in
        let a = as_int stack.(fr.f_sp - 2) in
        fr.f_sp <- fr.f_sp - 1;
        stack.(fr.f_sp - 1) <- Value.Int (eval_binop op a b);
        fr.f_pc <- fr.f_pc + 1
    | Instr.Neg ->
        stack.(fr.f_sp - 1) <- Value.Int (-as_int stack.(fr.f_sp - 1));
        fr.f_pc <- fr.f_pc + 1
    | Instr.Not ->
        stack.(fr.f_sp - 1) <-
          Value.Int (if Value.truthy stack.(fr.f_sp - 1) then 0 else 1);
        fr.f_pc <- fr.f_pc + 1
    | Instr.Cmp c ->
        let b = stack.(fr.f_sp - 1) in
        let a = stack.(fr.f_sp - 2) in
        fr.f_sp <- fr.f_sp - 1;
        stack.(fr.f_sp - 1) <- Value.Int (eval_cmp c a b);
        fr.f_pc <- fr.f_pc + 1
    | Instr.Jump target -> fr.f_pc <- target
    | Instr.Jump_if target ->
        fr.f_sp <- fr.f_sp - 1;
        if Value.truthy stack.(fr.f_sp) then fr.f_pc <- target
        else fr.f_pc <- fr.f_pc + 1
    | Instr.Jump_ifnot target ->
        fr.f_sp <- fr.f_sp - 1;
        if Value.truthy stack.(fr.f_sp) then fr.f_pc <- fr.f_pc + 1
        else fr.f_pc <- target
    | Instr.New cid ->
        t.cycles <- t.cycles + t.cost.Cost.alloc;
        note_class_load t cid;
        stack.(fr.f_sp) <- Value.alloc t.program cid;
        fr.f_sp <- fr.f_sp + 1;
        fr.f_pc <- fr.f_pc + 1
    | Instr.Get_field i ->
        let o = as_obj stack.(fr.f_sp - 1) in
        stack.(fr.f_sp - 1) <- o.Value.fields.(i);
        fr.f_pc <- fr.f_pc + 1
    | Instr.Put_field i ->
        let v = stack.(fr.f_sp - 1) in
        let o = as_obj stack.(fr.f_sp - 2) in
        fr.f_sp <- fr.f_sp - 2;
        o.Value.fields.(i) <- v;
        fr.f_pc <- fr.f_pc + 1
    | Instr.Get_global i ->
        stack.(fr.f_sp) <- t.globals.(i);
        fr.f_sp <- fr.f_sp + 1;
        fr.f_pc <- fr.f_pc + 1
    | Instr.Put_global i ->
        fr.f_sp <- fr.f_sp - 1;
        t.globals.(i) <- stack.(fr.f_sp);
        fr.f_pc <- fr.f_pc + 1
    | Instr.Array_new ->
        let n = as_int stack.(fr.f_sp - 1) in
        if n < 0 then rerr "negative array size %d" n;
        t.cycles <-
          t.cycles + t.cost.Cost.alloc + (n * t.cost.Cost.alloc_array_word);
        stack.(fr.f_sp - 1) <- Value.Arr (Array.make n Value.zero);
        fr.f_pc <- fr.f_pc + 1
    | Instr.Array_get ->
        let i = as_int stack.(fr.f_sp - 1) in
        let a = as_arr stack.(fr.f_sp - 2) in
        if i < 0 || i >= Array.length a then
          rerr "array index %d out of bounds (length %d)" i (Array.length a);
        fr.f_sp <- fr.f_sp - 1;
        stack.(fr.f_sp - 1) <- a.(i);
        fr.f_pc <- fr.f_pc + 1
    | Instr.Array_set ->
        let v = stack.(fr.f_sp - 1) in
        let i = as_int stack.(fr.f_sp - 2) in
        let a = as_arr stack.(fr.f_sp - 3) in
        if i < 0 || i >= Array.length a then
          rerr "array index %d out of bounds (length %d)" i (Array.length a);
        fr.f_sp <- fr.f_sp - 3;
        a.(i) <- v;
        fr.f_pc <- fr.f_pc + 1
    | Instr.Array_len ->
        let a = as_arr stack.(fr.f_sp - 1) in
        stack.(fr.f_sp - 1) <- Value.Int (Array.length a);
        fr.f_pc <- fr.f_pc + 1
    | Instr.Call_static mid -> invoke t mid
    | Instr.Call_direct mid -> invoke t mid
    | Instr.Call_virtual (sel, argc) ->
        t.cycles <- t.cycles + t.cost.Cost.virtual_dispatch;
        let recv = stack.(fr.f_sp - 1 - argc) in
        invoke t (dispatch_target t recv sel)
    | Instr.Guard_method g ->
        t.cycles <- t.cycles + t.cost.Cost.guard;
        let recv = stack.(fr.f_sp - 1 - g.Instr.argc) in
        let ok =
          match recv with
          | Value.Obj o -> (
              match Program.dispatch t.program o.Value.cls g.Instr.sel with
              | Some target -> Ids.Method_id.equal target g.Instr.expected
              | None -> false)
          | Value.Null | Value.Int _ | Value.Arr _ -> false
        in
        if ok then begin
          t.guard_hits <- t.guard_hits + 1;
          fr.f_pc <- fr.f_pc + 1
        end
        else begin
          t.guard_misses <- t.guard_misses + 1;
          t.on_guard_miss t fr.f_code.Code.meth fr.f_pc;
          fr.f_pc <- g.Instr.fail
        end
    | Instr.Return ->
        let result = stack.(fr.f_sp - 1) in
        t.depth <- t.depth - 1;
        if t.depth > 0 then begin
          let caller = t.frames.(t.depth - 1) in
          caller.f_regs.(caller.f_sp) <- result;
          caller.f_sp <- caller.f_sp + 1;
          caller.f_pc <- caller.f_pc + 1
        end
    | Instr.Return_void ->
        t.depth <- t.depth - 1;
        if t.depth > 0 then begin
          let caller = t.frames.(t.depth - 1) in
          caller.f_pc <- caller.f_pc + 1
        end
    | Instr.Instance_of cid ->
        let r =
          match stack.(fr.f_sp - 1) with
          | Value.Obj o ->
              if Program.is_subclass t.program ~sub:o.Value.cls ~super:cid
              then 1
              else 0
          | Value.Null | Value.Int _ | Value.Arr _ -> 0
        in
        stack.(fr.f_sp - 1) <- Value.Int r;
        fr.f_pc <- fr.f_pc + 1
    | Instr.Print_int ->
        fr.f_sp <- fr.f_sp - 1;
        t.output_rev <- as_int stack.(fr.f_sp) :: t.output_rev;
        fr.f_pc <- fr.f_pc + 1
    | Instr.Nop -> fr.f_pc <- fr.f_pc + 1);
    ()
  done

(* --- virtual threads --- *)

(* A virtual thread is a suspended call stack. The VM owns exactly one
   *running* stack ([t.frames]/[t.depth]); [resume] swaps a thread's stack
   in, interprets it for up to [quantum] cycles, and swaps it back out.
   Suspension only ever happens at a cycle-budget window boundary, where
   [step] has flushed [pc]/[sp] into the frame and settled the deferred
   instruction/cycle counters — i.e. at exactly the points where the
   single-threaded driver would consider a timer sample. Everything else
   (clock, code tables, globals, heap, hooks, counters) is shared: threads
   model Java threads of one JVM, not separate VMs.

   Reentrancy: two suspended frames of the same method share nothing
   mutable. Each [invoke] allocates a fresh frame with its own register
   array; the decoded instruction stream ([Dcode.t]) is immutable after
   construction and only ever *replaced* (never mutated) by
   [install_code], and a frame keeps executing the [f_code]/[f_dcode] it
   started with even after a replacement. The interleaving regression
   tests pin this. *)
type thread = {
  th_id : int;
  mutable th_frames : frame array;
  mutable th_depth : int;
  mutable th_started : bool;
}

type thread_status = Running | Done

let spawn t =
  let id = t.next_thread_id in
  t.next_thread_id <- id + 1;
  { th_id = id; th_frames = [||]; th_depth = 0; th_started = false }

let thread_id th = th.th_id
let thread_depth th = th.th_depth
let thread_done th = th.th_started && th.th_depth = 0

let resume ?(cycle_limit = max_int) t th ~quantum =
  if quantum <= 0 then invalid_arg "Interp.resume: quantum must be positive";
  (* Swap the thread's stack in. *)
  t.frames <- th.th_frames;
  t.depth <- th.th_depth;
  if not th.th_started then begin
    th.th_started <- true;
    let main = Program.main t.program in
    if not t.executed.((main :> int)) then begin
      t.executed.((main :> int)) <- true;
      t.on_first_execution main
    end;
    ignore
      (push_frame t
         t.code_table.((main :> int))
         t.dcode_table.((main :> int))
         t.native_table.((main :> int)));
    t.call_count <- t.call_count + 1
  end;
  let quantum_end =
    if quantum >= max_int - t.cycles then max_int else t.cycles + quantum
  in
  (* Save the (possibly reallocated) stack back even if a runtime error or
     the cycle limit escapes mid-slice, so the scheduler's view stays
     consistent with the VM's. *)
  t.window_end <- quantum_end;
  Fun.protect
    ~finally:(fun () ->
      t.window_end <- max_int;
      th.th_frames <- t.frames;
      th.th_depth <- t.depth)
    (fun () ->
      (* Same driver loop as [run], with the window additionally clipped
         at the quantum boundary: preemption can only happen where a
         timer check could have happened, so threaded execution samples
         at exactly the yield points single-threaded execution has. *)
      while t.depth > 0 && t.cycles < quantum_end do
        if t.cycles >= t.next_sample then begin
          t.next_sample <- t.next_sample + t.sample_period;
          if t.cycles > cycle_limit then raise Cycle_limit_exceeded;
          timer_hook t
        end;
        if t.depth > 0 then begin
          let fr = t.frames.(t.depth - 1) in
          let gap = min t.next_sample quantum_end - t.cycles in
          let budget = if gap <= 0 then 1 else gap in
          if t.calibrate then exec_window_calibrated t fr budget
          else exec_window t fr budget
        end
      done;
      if t.depth = 0 then Done else Running)
