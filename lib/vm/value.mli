(** Runtime values and heap objects.

    The heap is managed by the host (OCaml) garbage collector; the paper's
    semispace collector is out of scope (see DESIGN.md). *)

type t =
  | Int of int
  | Null
  | Obj of obj
  | Arr of t array

and obj = {
  cls : Acsi_bytecode.Ids.Class_id.t;
  fields : t array;
}

val zero : t
(** Default value of fresh fields, globals, array slots, and locals:
    [Int 0], matching Java's default for primitive slots. Code holding
    references in arrays (e.g. the library HashMap) must null its slots
    explicitly, as [Int 0] is not a valid dispatch receiver. *)

val one : t
(** Shared [Int 1]. *)

val of_int : int -> t
(** [Int n], drawn from a shared cache of small-integer cells when
    possible so hot interpreter paths avoid allocation. Semantically
    indistinguishable from [Int n]: integers compare structurally. *)

val of_bool : bool -> t
(** [one] / [zero]. *)

val alloc : Acsi_bytecode.Program.t -> Acsi_bytecode.Ids.Class_id.t -> t
(** Fresh object with all fields set to {!zero}. *)

val equal_cmp : t -> t -> bool
(** Reference equality on objects and arrays, structural on ints, and
    [Null = Null]; mixed kinds are unequal. This is the semantics of the
    [Cmp Eq] bytecode. *)

val truthy : t -> bool
(** [Int 0] and [Null] are false; everything else is true. *)

val pp : Format.formatter -> t -> unit
