(** The benchmark suite: eight synthetic workloads shaped after SPECjvm98 +
    SPECjbb2000 (see each module's header comment and DESIGN.md for the
    correspondence). Every workload shares the {!Javalib} class library,
    which is how collection-class context sensitivity (paper Figure 1)
    arises. *)

type spec = {
  name : string;  (** paper benchmark name: compress, jess, db, ... *)
  description : string;
  default_scale : int;
      (** scale giving a run long enough for the adaptive system to go
          through its full pipeline (~tens of millions of cycles) *)
  build : scale:int -> Acsi_bytecode.Program.t;
}

val all : spec list
(** The paper's suite, in Table 1 order. *)

val extended : spec list
(** Extension workloads beyond the paper's suite (its §7 anticipates
    "larger and more object-oriented programs"): the classic Richards
    scheduler benchmark, cross-validated against the canonical
    implementation's expected counters; [session] — one short
    polymorphic server request, the unit of load the sharded server
    multiplies into millions; and [dispatch] — a handler pipeline that
    loads an overriding subclass from inside its hot loop, the stress
    case for guard-free speculative inlining and deoptimization. *)

val find : string -> spec
(** Looks in {!all} and then {!extended}. Raises [Not_found]. *)

val build_all : ?scale_factor:float -> unit -> (string * Acsi_bytecode.Program.t) list
(** Compile every benchmark at its default scale multiplied by
    [scale_factor] (default 1.0; tests use small factors). *)
