(* "session"-shaped workload: one short server request.

   Unlike the SPEC-shaped suite — whose [main] is a long self-contained
   run — this main models a single user session of a few thousand
   cycles: decode a handful of operations, dispatch each through a
   polymorphic endpoint hierarchy, fold a reply checksum. The sharded
   server drives millions of these as independent virtual threads, so
   per-session cost must stay small while still exercising the
   machinery the paper cares about: the two [handle] targets share the
   [Endpoint.clamp] helper, giving the context-sensitive profile a
   Figure-1-style site to discriminate, and the dispatch loop is hot
   enough (across sessions on one VM) for the AOS to optimize. *)

open Acsi_lang.Dsl

let classes =
  [
    cls "Endpoint" ~parent:"Obj" ~fields:[ "bias" ]
      [
        meth "init" [ "bias" ] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "bias" (v "bias");
          ];
        (* Shared helper: reached from both subclasses' [handle], so a
           context-insensitive profile sees a mixed caller mix here. *)
        meth "clamp" [ "x" ] ~returns:true
          [
            if_ (lt (v "x") (i 0)) [ ret (i 0) ] [];
            if_ (gt (v "x") (i 4095)) [ ret (i 4095) ] [];
            ret (v "x");
          ];
        meth "handle" [ "x" ] ~returns:true [ ret (v "x") ];
      ];
    cls "ReadEndpoint" ~parent:"Endpoint" ~fields:[]
      [
        meth "init" [ "bias" ] ~returns:false
          [ expr (dcall this "Endpoint" "init" [ v "bias" ]) ];
        meth "handle" [ "x" ] ~returns:true
          [
            ret
              (inv this "clamp"
                 [ add (mul (v "x") (i 3)) (thisf "bias") ]);
          ];
      ];
    cls "WriteEndpoint" ~parent:"Endpoint" ~fields:[]
      [
        meth "init" [ "bias" ] ~returns:false
          [ expr (dcall this "Endpoint" "init" [ v "bias" ]) ];
        meth "handle" [ "x" ] ~returns:true
          [
            ret
              (inv this "clamp"
                 [ sub (mul (v "x") (i 5)) (thisf "bias") ]);
          ];
      ];
  ]

(* [scale] is the number of operations in the session; the default keeps
   one session at a few thousand virtual cycles. *)
let main ~scale =
  [
    let_ "rng" (new_ "Rng" [ i 9291 ]);
    let_ "rd" (new_ "ReadEndpoint" [ i 17 ]);
    let_ "wr" (new_ "WriteEndpoint" [ i 5 ]);
    let_ "acc" (i 0);
    for_ "op" (i 0) (i (8 * scale))
      [
        let_ "x" (inv (v "rng") "below" [ i 4096 ]);
        if_
          (lt (band (v "x") (i 7)) (i 5))
          [ let_ "acc" (add (v "acc") (inv (v "rd") "handle" [ v "x" ])) ]
          [ let_ "acc" (add (v "acc") (inv (v "wr") "handle" [ v "x" ])) ];
      ];
    print (band (v "acc") (i 1073741823));
  ]
