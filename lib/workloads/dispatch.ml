(* "dispatch"-shaped workload: speculative devirtualization stress.

   A pipeline drives a handler hierarchy through one hot virtual site
   whose receiver is a non-escaping argument of the hot method — exactly
   the shape where pre-existence ([Acsi_analysis.Preexist]) licenses
   guard-free speculative inlining under [--speculate]: for the first
   ~60% of the hot loop only [NormalHandler] is instantiated, so the
   [apply] selector is monomorphic over the {e loaded} universe and the
   oracle inlines it with no guard.

   Then, from inside the hot loop itself, the program instantiates
   [UrgentHandler] for the first time. The class-load event invalidates
   the (apply -> NormalHandler.apply) assumption while the speculative
   activation is still on the stack: the AOS must revert the code
   synchronously and deoptimize the stale frame back to baseline at the
   next safe point. Pre-existence keeps the stale frame correct in the
   interim — the second dispatch site (on the freshly allocated urgent
   handler) does NOT pre-exist and therefore was never speculated.

   Output is a pure function of program semantics, so the printed
   checksum must be byte-identical with speculation on or off, across
   both execution tiers — the acceptance check for the deoptimization
   subsystem. *)

open Acsi_lang.Dsl

let classes =
  [
    cls "Handler" ~parent:"Obj" ~fields:[ "gain" ]
      [
        meth "init" [ "gain" ] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "gain" (v "gain");
          ];
        meth "apply" [ "x" ] ~returns:true [ ret (v "x") ];
      ];
    cls "NormalHandler" ~parent:"Handler" ~fields:[]
      [
        meth "init" [ "gain" ] ~returns:false
          [ expr (dcall this "Handler" "init" [ v "gain" ]) ];
        meth "apply" [ "x" ] ~returns:true
          [ ret (band (add (mul (v "x") (i 3)) (thisf "gain")) (i 65535)) ];
      ];
    cls "UrgentHandler" ~parent:"Handler" ~fields:[]
      [
        meth "init" [ "gain" ] ~returns:false
          [ expr (dcall this "Handler" "init" [ v "gain" ]) ];
        meth "apply" [ "x" ] ~returns:true
          [ ret (band (sub (mul (v "x") (i 5)) (thisf "gain")) (i 65535)) ];
      ];
    cls "Pipeline" ~parent:"Obj" ~fields:[ "spill" ]
      [
        meth "init" [] ~returns:false
          [
            expr (dcall this "Obj" "init" []);
            set_thisf "spill" (i 0);
          ];
        (* The hot method. [h] is dispatched on but never stored or
           leaked, so its slot is non-escaping and every receiver it
           carries pre-exists the activation. At iteration [flip] the
           first [UrgentHandler] is allocated mid-activation — the
           load-time invalidation case. Passing [flip = -1] keeps the
           loop pure. *)
        meth "run" [ "h"; "iters"; "flip" ] ~returns:true
          [
            let_ "acc" (i 0);
            for_ "k" (i 0) (v "iters")
              [
                let_ "acc"
                  (band
                     (add (v "acc")
                        (inv (v "h") "apply" [ add (v "k") (v "acc") ]))
                     (i 1073741823));
                if_
                  (eq (v "k") (v "flip"))
                  [
                    set_thisf "spill"
                      (inv (new_ "UrgentHandler" [ i 9 ]) "apply"
                         [ v "acc" ]);
                  ]
                  [];
              ];
            ret (band (add (v "acc") (thisf "spill")) (i 1073741823));
          ];
      ];
  ]

(* Phase 1 runs long enough for the adaptive system to sample, compile
   and OSR into [run] well before the flip point at 60%; phases 2 and 3
   exercise the reverted/recompiled (now polymorphic) code with both
   receivers. *)
let main ~scale =
  [
    let_ "p" (new_ "Pipeline" []);
    let_ "n" (new_ "NormalHandler" [ i 7 ]);
    let_ "a1"
      (inv (v "p") "run" [ v "n"; i (1000 * scale); i (600 * scale) ]);
    let_ "u" (new_ "UrgentHandler" [ i 11 ]);
    let_ "a2" (inv (v "p") "run" [ v "u"; i (250 * scale); i (-1) ]);
    let_ "a3" (inv (v "p") "run" [ v "n"; i (250 * scale); i (-1) ]);
    print (band (add (v "a1") (add (v "a2") (v "a3"))) (i 1073741823));
  ]
