type spec = {
  name : string;
  description : string;
  default_scale : int;
  build : scale:int -> Acsi_bytecode.Program.t;
}

let build_prog ?(globals = []) classes main =
  Acsi_lang.Compile.prog
    (Acsi_lang.Dsl.prog
       ~globals:(Javalib.globals @ globals)
       (Javalib.classes @ classes)
       main)

let all =
  [
    {
      name = "compress";
      description = "Lempel-Ziv-flavoured block compression";
      default_scale = 24;
      build = (fun ~scale -> build_prog Compress.classes (Compress.main ~scale));
    };
    {
      name = "jess";
      description = "forward-chaining expert-system kernel";
      default_scale = 340;
      build =
        (fun ~scale ->
          build_prog ~globals:Jess.globals Jess.classes (Jess.main ~scale));
    };
    {
      name = "db";
      description = "memory-resident database operations";
      default_scale = 220;
      build = (fun ~scale -> build_prog Db.classes (Db.main ~scale));
    };
    {
      name = "javac";
      description = "expression compiler: tokens, parser, AST evaluation";
      default_scale = 300;
      build = (fun ~scale -> build_prog Javac.classes (Javac.main ~scale));
    };
    {
      name = "mpeg";
      description = "fixed-point audio decode kernels";
      default_scale = 14;
      build =
        (fun ~scale -> build_prog Mpegaudio.classes (Mpegaudio.main ~scale));
    };
    {
      name = "mtrt";
      description = "two-thread fixed-point ray caster";
      default_scale = 28;
      build = (fun ~scale -> build_prog Mtrt.classes (Mtrt.main ~scale));
    };
    {
      name = "jack";
      description = "parser generator: recursive grammar expansion x16";
      default_scale = 700;
      build = (fun ~scale -> build_prog Jack.classes (Jack.main ~scale));
    };
    {
      name = "jbb";
      description = "warehouse transaction processing (TPC-C-flavoured mix)";
      default_scale = 210;
      build = (fun ~scale -> build_prog Jbb.classes (Jbb.main ~scale));
    };
  ]

let extended =
  [
    {
      name = "session";
      description = "one short server request (sharded-server unit of load)";
      default_scale = 4;
      build = (fun ~scale -> build_prog Session.classes (Session.main ~scale));
    };
    {
      name = "dispatch";
      description =
        "late-loaded handler subclass: speculative inlining + deopt stress";
      default_scale = 40;
      build =
        (fun ~scale -> build_prog Dispatch.classes (Dispatch.main ~scale));
    };
    {
      name = "richards";
      description = "classic OO task-scheduler benchmark (paper §7 extension)";
      default_scale = 12;
      build =
        (fun ~scale -> build_prog Richards.classes (Richards.main ~scale));
    };
  ]

let find name = List.find (fun s -> String.equal s.name name) (all @ extended)

let build_all ?(scale_factor = 1.0) () =
  List.map
    (fun s ->
      let scale =
        max 1 (int_of_float (scale_factor *. float_of_int s.default_scale))
      in
      (s.name, s.build ~scale))
    all
