(** JIT-output verification.

    Re-verifies every [Code.t] the JIT produces — structural
    well-formedness and typed verification of the expanded body via the
    shared transfer table, plus the transformation-specific invariants
    the interpreter and OSR machinery rely on:

    - {b inline-map validity}: every source entry names an existing
      method and pc, every parent link is a call site, and root-level
      entries name the compiled root;
    - {b guard domination}: every instruction of a devirtualized inline
      region is dominated by a [Guard_method] for exactly that target
      at that call site — unless class-hierarchy analysis proves the
      selector monomorphic, or the call site was statically bound (in
      which case the inlined body must be the bound target);
    - {b return discipline}: a rewritten return (a [Jump] whose source
      instruction is a return of an inlined frame) never lands back in
      its own or a more deeply nested inline region (jump threading may
      legally carry it to any {e ancestor} frame);
    - {b OSR compatibility}: for each root source pc, the first
      optimized entry the interpreter would transfer onto has the same
      operand-stack depth as the source, with pairwise-compatible
      types. *)

open Acsi_bytecode
open Acsi_vm

val wrapper_of : Program.t -> Code.t -> Meth.t
(** The compiled body wrapped as a method (named [root$opt]) so the
    verifier and the typed checker can run on it unchanged. *)

val check : Program.t -> Code.t -> Diag.t list
(** All findings, in pc order. Baseline code (no source map) is the
    method body itself and trivially passes. *)

val check_exn : Program.t -> Code.t -> unit
(** Raises {!Diag.Error} with the first finding, if any. *)
