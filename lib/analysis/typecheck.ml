open Acsi_bytecode

type state = { locals : Ty.t array; stack : Ty.t list }

let entry_state _p m =
  let locals = Array.make (max m.Meth.max_locals 1) Ty.Top in
  (match m.Meth.kind with
  | Meth.Instance -> locals.(0) <- Ty.Ref m.Meth.owner
  | Meth.Static -> ());
  { locals; stack = [] }

let state_equal a b =
  Array.length a.locals = Array.length b.locals
  && Array.for_all2 Ty.equal a.locals b.locals
  && List.compare_lengths a.stack b.stack = 0
  && List.for_all2 Ty.equal a.stack b.stack

let state_join p a b =
  if List.compare_lengths a.stack b.stack <> 0 then
    raise
      (Dataflow.Mismatch
         (Printf.sprintf "inconsistent stack depth at join: %d vs %d"
            (List.length a.stack) (List.length b.stack)));
  {
    locals = Array.map2 (Ty.join p) a.locals b.locals;
    stack = List.map2 (Ty.join p) a.stack b.stack;
  }

(* One instruction's abstract effect. [report] receives definite-error
   messages; the fixpoint pass uses [ignore], the check pass collects.
   Shapes (pops/pushes, local and call validity) come from
   [Verify.effect_of] so this can never disagree with the depth
   verifier. *)
let step p m ~report ~pc instr (st : state) =
  let pops, pushes = Verify.effect_of p m pc instr in
  let what = Instr.to_string instr in
  let err fmt = Format.kasprintf report fmt in
  let clash = "a type clash at join (int vs reference)" in
  let name_of ty =
    match ty with Ty.Conflict -> clash | _ -> Ty.to_string p ty
  in
  let want_int ty =
    match ty with
    | Ty.Bot | Ty.Int | Ty.Top -> ()
    | Ty.Conflict | Ty.Null | Ty.Ref _ | Ty.Arr | Ty.Any_ref ->
        err "%s expects an int but got %s" what (name_of ty)
  in
  let want_obj ty =
    match ty with
    | Ty.Bot | Ty.Top | Ty.Any_ref | Ty.Ref _ -> ()
    | Ty.Conflict | Ty.Int | Ty.Null | Ty.Arr ->
        err "%s expects an object but got %s" what (name_of ty)
  in
  let want_arr ty =
    match ty with
    | Ty.Bot | Ty.Top | Ty.Any_ref | Ty.Arr -> ()
    | Ty.Conflict | Ty.Int | Ty.Null | Ty.Ref _ ->
        err "%s expects an array but got %s" what (name_of ty)
  in
  let field_bounds i ty =
    match ty with
    | Ty.Ref c ->
        let bound = Ty.cone_max_fields p c in
        if i < 0 || i >= bound then
          err "%s out of bounds: %s and its subclasses have at most %d fields"
            what
            (Program.clazz p c).Clazz.name
            bound
    | Ty.Bot | Ty.Int | Ty.Null | Ty.Arr | Ty.Any_ref | Ty.Conflict | Ty.Top
      ->
        ()
  in
  let rec take k stack acc =
    if k = 0 then (List.rev acc, stack)
    else
      match stack with
      (* Underflow is the depth verifier's error; stay total here. *)
      | [] -> take (k - 1) [] (Ty.Top :: acc)
      | ty :: rest -> take (k - 1) rest (ty :: acc)
  in
  let popped, rest = take pops st.stack [] in
  let nth i = match List.nth_opt popped i with Some ty -> ty | None -> Ty.Top in
  let peek i = match List.nth_opt st.stack i with Some ty -> ty | None -> Ty.Top in
  let locals = ref st.locals in
  let call_result = if pushes > 0 then [ Ty.Top ] else [] in
  let pushed =
    match (instr : Instr.t) with
    | Const _ -> [ Ty.Int ]
    | Const_null -> [ Ty.Null ]
    | Load i -> [ st.locals.(i) ]
    | Store i ->
        let a = Array.copy st.locals in
        a.(i) <- nth 0;
        locals := a;
        []
    | Dup -> [ nth 0; nth 0 ]
    | Pop -> []
    | Swap -> [ nth 1; nth 0 ]
    | Binop _ ->
        want_int (nth 0);
        want_int (nth 1);
        [ Ty.Int ]
    | Neg ->
        want_int (nth 0);
        [ Ty.Int ]
    | Not -> [ Ty.Int ]
    | Cmp (Eq | Ne) -> [ Ty.Int ]
    | Cmp (Lt | Le | Gt | Ge) ->
        want_int (nth 0);
        want_int (nth 1);
        [ Ty.Int ]
    | Jump _ | Jump_if _ | Jump_ifnot _ | Nop | Return | Return_void -> []
    | New c -> [ Ty.Ref c ]
    | Get_field i ->
        want_obj (nth 0);
        field_bounds i (nth 0);
        [ Ty.Top ]
    | Put_field i ->
        want_obj (nth 1);
        field_bounds i (nth 1);
        []
    | Get_global _ -> [ Ty.Top ]
    | Put_global _ -> []
    | Array_new ->
        want_int (nth 0);
        [ Ty.Arr ]
    | Array_get ->
        want_int (nth 0);
        want_arr (nth 1);
        [ Ty.Top ]
    | Array_set ->
        want_int (nth 1);
        want_arr (nth 2);
        []
    | Array_len ->
        want_arr (nth 0);
        [ Ty.Int ]
    | Print_int ->
        want_int (nth 0);
        []
    | Call_static _ -> call_result
    | Call_direct mid ->
        let callee = Program.meth p mid in
        let recv = nth callee.Meth.arity in
        want_obj recv;
        (match recv with
        | Ty.Ref c when not (Ty.related p c callee.Meth.owner) ->
            err "%s on receiver %s unrelated to %s" what
              (Program.clazz p c).Clazz.name
              (Program.clazz p callee.Meth.owner).Clazz.name
        | _ -> ());
        call_result
    | Call_virtual (sel, argc) ->
        let recv = nth argc in
        want_obj recv;
        (match recv with
        | Ty.Ref c when not (Ty.cone_implements p c sel) ->
            err "%s unanswerable: no subclass of %s implements %s" what
              (Program.clazz p c).Clazz.name
              (Program.selector_name p sel)
        | _ -> ());
        call_result
    | Instance_of _ -> [ Ty.Int ]
    | Guard_method g ->
        want_obj (peek g.Instr.argc);
        []
  in
  { locals = !locals; stack = pushed @ rest }

(* Passing a guard proves the receiver's runtime class dispatches [sel]
   to exactly [expected], which only classes at or under its owner can;
   narrow the receiver slot on the fall-through edge. Never narrow a
   type the guard cannot hold (int, array, a clash) — that would mask
   the definite error the check pass reports. *)
let refine p ~pc:_ instr ~target:_ ~fall st =
  match (instr : Instr.t) with
  | Guard_method g when fall ->
      let owner = (Program.meth p g.Instr.expected).Meth.owner in
      let narrow ty =
        match (ty : Ty.t) with
        | Ref c when Program.is_subclass p ~sub:c ~super:owner -> ty
        | Top | Any_ref | Ref _ | Null | Bot -> Ref owner
        | Int | Conflict | Arr -> ty
      in
      let stack =
        List.mapi (fun i ty -> if i = g.Instr.argc then narrow ty else ty)
          st.stack
      in
      { st with stack }
  | _ -> st

let analyze p m =
  let cfg = Cfg.make m.Meth.body in
  let module L = struct
    type t = state

    let equal = state_equal
    let join = state_join p
    let widen _old joined = joined
  end in
  let module F = Dataflow.Forward (L) in
  F.run cfg ~init:(entry_state p m)
    ~transfer:(fun ~pc instr st -> step p m ~report:ignore ~pc instr st)
    ~refine_edge:(refine p) ()

let meth_diags p m =
  try
    let states = analyze p m in
    let diags = ref [] in
    Array.iteri
      (fun pc st ->
        match st with
        | None -> ()
        | Some st -> (
            let report msg =
              diags := Diag.make ~meth:m.Meth.name ~pc msg :: !diags
            in
            try ignore (step p m ~report ~pc m.Meth.body.(pc) st)
            with Verify.Error msg ->
              diags := Diag.of_verify_error msg :: !diags))
      states;
    List.rev !diags
  with
  | Verify.Error msg -> [ Diag.of_verify_error msg ]
  | Dataflow.Join_error { pc; message } ->
      [ Diag.make ~meth:m.Meth.name ~pc message ]

let check_meth p m =
  match meth_diags p m with [] -> () | d :: _ -> raise (Diag.Error d)

let program p = Array.iter (check_meth p) (Program.methods p)
