open Acsi_bytecode

type t = {
  comp_of : int array;  (* method id -> component id, bottom-up order *)
  comps : Ids.Method_id.t array array;  (* members, ascending id order *)
  self_edge : bool array;  (* per method: direct self-call *)
}

let call_targets p (instr : Instr.t) =
  match instr with
  | Instr.Call_static mid | Instr.Call_direct mid -> [ mid ]
  | Instr.Call_virtual (sel, _) -> Program.implementations p sel
  | Instr.Guard_method g -> [ g.Instr.expected ]
  | Instr.Const _ | Instr.Const_null | Instr.Load _ | Instr.Store _
  | Instr.Dup | Instr.Pop | Instr.Swap | Instr.Binop _ | Instr.Neg
  | Instr.Not | Instr.Cmp _ | Instr.Jump _ | Instr.Jump_if _
  | Instr.Jump_ifnot _ | Instr.New _ | Instr.Get_field _ | Instr.Put_field _
  | Instr.Get_global _ | Instr.Put_global _ | Instr.Array_new
  | Instr.Array_get | Instr.Array_set | Instr.Array_len | Instr.Return
  | Instr.Return_void | Instr.Instance_of _ | Instr.Print_int | Instr.Nop ->
      []

(* Successor method ids of one method, deduplicated and ascending — the
   deterministic visit order Tarjan's lowlinks (and therefore the
   component numbering) depend on. *)
let successors p (m : Meth.t) =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun instr ->
      List.iter
        (fun mid -> Hashtbl.replace seen (mid : Ids.Method_id.t :> int) ())
        (call_targets p instr))
    m.Meth.body;
  let succ = Hashtbl.fold (fun k () acc -> k :: acc) seen [] in
  Array.of_list (List.sort compare succ)

let of_program p =
  let ms = Program.methods p in
  let n = Array.length ms in
  let adj = Array.map (successors p) ms in
  let self_edge =
    Array.mapi (fun i row -> Array.exists (fun j -> j = i) row) adj
  in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp_of = Array.make n (-1) in
  let next_index = ref 0 in
  let scc_stack = ref [] in
  let comps_rev = ref [] in
  let ncomps = ref 0 in
  let discover v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    scc_stack := v :: !scc_stack;
    on_stack.(v) <- true
  in
  let pop_component v =
    let members = ref [] in
    let stop = ref false in
    while not !stop do
      match !scc_stack with
      | [] -> assert false
      | w :: rest ->
          scc_stack := rest;
          on_stack.(w) <- false;
          comp_of.(w) <- !ncomps;
          members := w :: !members;
          if w = v then stop := true
    done;
    comps_rev :=
      Array.of_list (List.map Ids.Method_id.of_int (List.sort compare !members))
      :: !comps_rev;
    incr ncomps
  in
  (* Iterative Tarjan: each work-stack entry is a vertex plus the index of
     its next unexplored successor. *)
  let work = Stack.create () in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      discover root;
      Stack.push (root, ref 0) work;
      while not (Stack.is_empty work) do
        let v, next = Stack.top work in
        if !next < Array.length adj.(v) then begin
          let w = adj.(v).(!next) in
          incr next;
          if index.(w) < 0 then begin
            discover w;
            Stack.push (w, ref 0) work
          end
          else if on_stack.(w) then
            lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          ignore (Stack.pop work);
          (match Stack.top_opt work with
          | Some (u, _) -> lowlink.(u) <- min lowlink.(u) lowlink.(v)
          | None -> ());
          if lowlink.(v) = index.(v) then pop_component v
        end
      done
    end
  done;
  { comp_of; comps = Array.of_list (List.rev !comps_rev); self_edge }

let count t = Array.length t.comps
let component_of t (mid : Ids.Method_id.t) = t.comp_of.((mid :> int))
let members t c = t.comps.(c)

let in_same_component t (a : Ids.Method_id.t) (b : Ids.Method_id.t) =
  t.comp_of.((a :> int)) = t.comp_of.((b :> int))

let is_recursive _p t (mid : Ids.Method_id.t) =
  let c = t.comp_of.((mid :> int)) in
  Array.length t.comps.(c) > 1 || t.self_edge.((mid :> int))
