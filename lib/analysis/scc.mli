(** Call-graph strongly connected components.

    The static call graph of a sealed program: direct edges from
    [Call_static]/[Call_direct] sites (and guard expectations), and one
    edge per CHA implementation of each [Call_virtual] selector — the
    closed-world over-approximation of every call the method could make.
    Tarjan's condensation numbers components in pop order, which is
    bottom-up (every component's callees live in lower-numbered
    components), so an interprocedural summary pass can run a single
    bottom-up sweep with fixpoint iteration confined to each component.

    Everything here is a pure function of the program: construction
    visits methods in id order and successors in ascending id order, so
    component numbering and member order are deterministic. *)

open Acsi_bytecode

type t

val of_program : Program.t -> t

val call_targets : Program.t -> Instr.t -> Ids.Method_id.t list
(** Possible callees of one instruction: the single target of a static
    or direct call (or a guard's expected method), every CHA
    implementation of a virtual call's selector, [[]] for non-calls. *)

val count : t -> int
(** Number of components; ids are [0 .. count - 1] in bottom-up order. *)

val component_of : t -> Ids.Method_id.t -> int

val members : t -> int -> Ids.Method_id.t array
(** Methods of one component, ascending id order. *)

val in_same_component : t -> Ids.Method_id.t -> Ids.Method_id.t -> bool

val is_recursive : Program.t -> t -> Ids.Method_id.t -> bool
(** Whether the method sits on a call-graph cycle: its component has
    more than one member, or it has a direct self-edge. *)
