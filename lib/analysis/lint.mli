(** Program lints: typed verification plus style/deadness findings.

    Runs the structural verifier and the typed verifier over every
    method, then reports unreachable instruction ranges and local slots
    that are never read or written.

    Two deliberate exemptions keep the compiler's own output clean: a
    trailing unreachable return (the front end appends an epilogue
    [Return_void] that explicit returns can strand), and local slot 0
    of a parameterless static method (the front end always allocates at
    least one slot). *)

open Acsi_bytecode

val meth : Program.t -> Meth.t -> Diag.t list
val program : Program.t -> Diag.t list
(** Findings for every method, in declaration order. *)

val meth_notes : Summary.table -> Program.t -> Meth.t -> Diag.t list
(** Advisory notes backed by interprocedural summaries — dead work the
    intraprocedural lints cannot see: the result of a provably pure call
    immediately discarded, a call to an always-throwing method, and a
    virtual dispatch CHA proves monomorphic. Empty for methods that fail
    verification (the hard findings cover those). *)

val program_notes : ?summaries:Summary.table -> Program.t -> Diag.t list
(** {!meth_notes} for every method, in declaration order, computing the
    summary table once when not supplied. *)
