(** Program lints: typed verification plus style/deadness findings.

    Runs the structural verifier and the typed verifier over every
    method, then reports unreachable instruction ranges and local slots
    that are never read or written.

    Two deliberate exemptions keep the compiler's own output clean: a
    trailing unreachable return (the front end appends an epilogue
    [Return_void] that explicit returns can strand), and local slot 0
    of a parameterless static method (the front end always allocates at
    least one slot). *)

open Acsi_bytecode

val meth : Program.t -> Meth.t -> Diag.t list
val program : Program.t -> Diag.t list
(** Findings for every method, in declaration order. *)
