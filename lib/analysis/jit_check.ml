open Acsi_bytecode
open Acsi_vm

let wrapper_of p (code : Code.t) =
  let root = Program.meth p code.Code.meth in
  {
    Meth.id = root.Meth.id;
    owner = root.Meth.owner;
    name = root.Meth.name ^ "$opt";
    selector = root.Meth.selector;
    kind = root.Meth.kind;
    arity = root.Meth.arity;
    returns = root.Meth.returns;
    body = code.Code.instrs;
    max_locals = code.Code.max_locals;
    max_stack = code.Code.max_stack;
  }

let parents_equal =
  List.equal (fun (m1, pc1) (m2, pc2) ->
      Ids.Method_id.equal m1 m2 && Int.equal pc1 pc2)

(* [a] is a (possibly equal) suffix of [b]. *)
let rec is_suffix a b =
  let la = List.length a and lb = List.length b in
  if la > lb then false
  else if la = lb then parents_equal a b
  else match b with [] -> false | _ :: rest -> is_suffix a rest

let meth_exists p mid =
  (mid : Ids.Method_id.t :> int) >= 0
  && (mid :> int) < Program.method_count p

(* The per-(method, parent-chain) inline regions of a source map: every
   pc whose entry carries that exact chain, synthetic argument stores
   included. *)
let regions (srcs : Code.src_entry array) =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Array.iteri
    (fun pc (e : Code.src_entry) ->
      if e.Code.parents <> [] then begin
        let key =
          ( (e.Code.src_meth :> int),
            List.map (fun ((m : Ids.Method_id.t), cs) -> ((m :> int), cs))
              e.Code.parents )
        in
        match Hashtbl.find_opt tbl key with
        | Some pcs -> pcs := pc :: !pcs
        | None ->
            let pcs = ref [ pc ] in
            Hashtbl.add tbl key pcs;
            order := (e.Code.src_meth, e.Code.parents, pcs) :: !order
      end)
    srcs;
  List.rev_map (fun (m, parents, pcs) -> (m, parents, List.rev !pcs)) !order

let check p (code : Code.t) : Diag.t list =
  match code.Code.src with
  | None -> []
  | Some srcs -> (
      let root = Program.meth p code.Code.meth in
      let wrapper = wrapper_of p code in
      (* Structural verification first; the remaining invariants assume a
         well-formed body. *)
      match
        (try
           Verify.meth p wrapper;
           None
         with Verify.Error msg -> Some msg)
      with
      | Some msg -> [ Diag.of_verify_error msg ]
      | None ->
          let instrs = code.Code.instrs in
          let n = Array.length instrs in
          let diags = ref [] in
          let add ~pc fmt =
            Format.kasprintf
              (fun message ->
                diags :=
                  Diag.make ~meth:wrapper.Meth.name ~pc message :: !diags)
              fmt
          in
          (* Typed verification of the expanded body. *)
          diags := List.rev (Typecheck.meth_diags p wrapper);
          (* Inline-map validity. *)
          Array.iteri
            (fun pc (e : Code.src_entry) ->
              if not (meth_exists p e.Code.src_meth) then
                add ~pc "inline map entry names unknown method %d"
                  (e.Code.src_meth :> int)
              else begin
                let sm = Program.meth p e.Code.src_meth in
                if
                  e.Code.src_pc < -1
                  || e.Code.src_pc >= Array.length sm.Meth.body
                then
                  add ~pc "stale inline map: source pc %d outside %s (%d instrs)"
                    e.Code.src_pc sm.Meth.name
                    (Array.length sm.Meth.body);
                if
                  e.Code.parents = []
                  && not (Ids.Method_id.equal e.Code.src_meth root.Meth.id)
                then
                  add ~pc "root-level inline map entry names %s, not the root %s"
                    sm.Meth.name root.Meth.name
              end;
              List.iter
                (fun (caller, cs) ->
                  if not (meth_exists p caller) then
                    add ~pc "inline map parent names unknown method %d"
                      (caller :> int)
                  else
                    let cm = Program.meth p caller in
                    if cs < 0 || cs >= Array.length cm.Meth.body then
                      add ~pc "inline map parent %s:%d out of bounds"
                        cm.Meth.name cs
                    else if not (Instr.is_call cm.Meth.body.(cs)) then
                      add ~pc "inline map parent %s:%d is not a call site"
                        cm.Meth.name cs)
                e.Code.parents)
            srcs;
          (* Guard domination per inline region. *)
          let cfg = Cfg.make instrs in
          let idom = Cfg.dominators cfg in
          (* Speculative (assumption-carrying) regions trade the guard
             for recoverability: every pc must be dominated by a pc with
             a valid deopt point, so a CHA invalidation can always
             reconstruct source frames at or before the region. *)
          let deopt_pcs =
            lazy
              (let tbl = Acsi_deopt.Deopt.table_of_code p code in
               let pcs = ref [] in
               for pc = n - 1 downto 0 do
                 if Acsi_deopt.Deopt.covered tbl ~pc then pcs := pc :: !pcs
               done;
               !pcs)
          in
          let assumed sel target =
            List.exists
              (fun (s, m) ->
                Ids.Selector.equal s sel && Ids.Method_id.equal m target)
              code.Code.assumptions
          in
          List.iter
            (fun (region_m, parents, pcs) ->
              match parents with
              | [] -> ()
              | (c1, p1) :: rest
                when meth_exists p region_m && meth_exists p c1 ->
                  let cm = Program.meth p c1 in
                  if p1 >= 0 && p1 < Array.length cm.Meth.body then begin
                    let region_meth = Program.meth p region_m in
                    match cm.Meth.body.(p1) with
                    | Instr.Call_static mid | Instr.Call_direct mid ->
                        if not (Ids.Method_id.equal mid region_m) then
                          add ~pc:(List.hd pcs)
                            "inline region for %s at call site %s:%d which binds %s"
                            region_meth.Meth.name cm.Meth.name p1
                            (Program.meth p mid).Meth.name
                    | Instr.Call_virtual (sel, _) ->
                        if
                          not
                            (List.exists
                               (Ids.Method_id.equal region_m)
                               (Program.implementations p sel))
                        then
                          add ~pc:(List.hd pcs)
                            "inline region for %s unreachable from selector %s"
                            region_meth.Meth.name
                            (Program.selector_name p sel)
                        else if assumed sel region_m then
                          (* Unguarded speculative inline: no guard to
                             dominate the region — a valid deopt point
                             must instead. *)
                          List.iter
                            (fun pc ->
                              if
                                not
                                  (List.exists
                                     (fun d ->
                                       Cfg.dominates cfg ~idom d pc)
                                     (Lazy.force deopt_pcs))
                              then
                                add ~pc
                                  "speculative inline body for %s not dominated by a deopt point"
                                  region_meth.Meth.name)
                            pcs
                        else if
                          not
                            (match Program.monomorphic_target p sel with
                            | Some t -> Ids.Method_id.equal t region_m
                            | None -> false)
                        then begin
                          (* Devirtualized without CHA proof: every pc of
                             the region must sit below a matching guard. *)
                          let guard_pcs = ref [] in
                          Array.iteri
                            (fun gpc instr ->
                              match instr with
                              | Instr.Guard_method g
                                when Ids.Method_id.equal g.Instr.expected
                                       region_m
                                     && Ids.Selector.equal g.Instr.sel sel
                                     && Ids.Method_id.equal
                                          srcs.(gpc).Code.src_meth c1
                                     && srcs.(gpc).Code.src_pc = p1
                                     && parents_equal srcs.(gpc).Code.parents
                                          rest ->
                                  guard_pcs := gpc :: !guard_pcs
                              | _ -> ())
                            instrs;
                          List.iter
                            (fun pc ->
                              if
                                not
                                  (List.exists
                                     (fun g -> Cfg.dominates cfg ~idom g pc)
                                     !guard_pcs)
                              then
                                add ~pc
                                  "inline body for %s not dominated by its method guard"
                                  region_meth.Meth.name)
                            pcs
                        end
                    | _ ->
                        (* reported by the per-entry parent check *)
                        ()
                  end
              | _ -> ())
            (regions srcs);
          (* Return discipline: a rewritten return never jumps back into
             its own or a nested inline region. *)
          Array.iteri
            (fun pc instr ->
              match instr with
              | Instr.Jump t when t >= 0 && t < n -> (
                  let e = srcs.(pc) in
                  if
                    e.Code.parents <> []
                    && e.Code.src_pc >= 0
                    && meth_exists p e.Code.src_meth
                  then
                    let sm = Program.meth p e.Code.src_meth in
                    if e.Code.src_pc < Array.length sm.Meth.body then
                      match sm.Meth.body.(e.Code.src_pc) with
                      | Instr.Return | Instr.Return_void ->
                          if is_suffix e.Code.parents srcs.(t).Code.parents
                          then
                            add ~pc
                              "rewritten return of %s jumps into its own or a nested inline region"
                              sm.Meth.name
                      | _ -> ())
              | _ -> ())
            instrs;
          (* OSR compatibility: the interpreter transfers a root frame
             onto the first entry matching its root-level source pc,
             carrying the operand stack over. *)
          (try
             let opt_states = Typecheck.analyze p wrapper in
             let src_states = lazy (Typecheck.analyze p root) in
             let seen = Hashtbl.create 16 in
             Array.iteri
               (fun pc (e : Code.src_entry) ->
                 if
                   e.Code.parents = [] && e.Code.src_pc >= 0
                   && Ids.Method_id.equal e.Code.src_meth root.Meth.id
                   && e.Code.src_pc < Array.length root.Meth.body
                   && not (Hashtbl.mem seen e.Code.src_pc)
                 then begin
                   Hashtbl.add seen e.Code.src_pc ();
                   match
                     (opt_states.(pc), (Lazy.force src_states).(e.Code.src_pc))
                   with
                   | Some o, Some s ->
                       let od = List.length o.Typecheck.stack in
                       let sd = List.length s.Typecheck.stack in
                       (* A depth mismatch is legal: peephole folding
                          can leave an entry on an instruction with a
                          different depth than its source pc, and the
                          interpreter refuses such transfers. A
                          transferable entry (equal depth) must carry
                          compatible types, or the carried-over stack
                          would be misinterpreted. *)
                       if od = sd then
                         List.iteri
                           (fun i (a, b) ->
                             if not (Ty.compatible a b) then
                               add ~pc
                                 "OSR entry for source pc %d: stack slot %d is %s in optimized code but %s at source"
                                 e.Code.src_pc i (Ty.to_string p a)
                                 (Ty.to_string p b))
                           (List.combine o.Typecheck.stack
                              s.Typecheck.stack)
                   | _, _ -> ()
                 end)
               srcs
           with Verify.Error _ | Dataflow.Join_error _ ->
             (* already reported via the typed verification above *)
             ());
          List.stable_sort
            (fun (a : Diag.t) b ->
              compare (Option.value a.pc ~default:(-1))
                (Option.value b.pc ~default:(-1)))
            (List.rev !diags))

let check_exn p code =
  match check p code with [] -> () | d :: _ -> raise (Diag.Error d)
