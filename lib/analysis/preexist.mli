(** Pre-existence analysis (Detlefs & Agesen style).

    A receiver {e pre-exists} an invocation of method [m] when the
    object was allocated before [m]'s current activation began — then a
    class load that invalidates a CHA-based devirtualization in [m]
    cannot have happened after the receiver was dispatched on, so
    already-active frames of [m] stay correct and invalidation only
    needs to keep {e future} activations off the speculative code (code
    patching / table swap), never to deopt a dispatched receiver.

    The proof here is the simple, sound core: the receiver is one of
    [m]'s own arguments, still holding the original argument value
    (tracked through local reassignment by forward dataflow), and — as
    an extra conservatism riding on the PR 8 interprocedural summaries
    — the argument slot is proven non-escaping in [m], so no aliasing
    path can swap the object under the analysis. *)

open Acsi_bytecode

val receiver_preexists : Program.t -> Summary.table -> Meth.t -> bool array
(** Per pc of [m.body]: the instruction is a [Call_virtual] whose
    receiver provably pre-exists the activation (an unmodified,
    non-escaping argument of [m]). [false] everywhere else. *)
