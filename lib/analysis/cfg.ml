open Acsi_bytecode

type block = {
  first : int;
  last : int;
  succs : int list;
  preds : int list;
}

type t = {
  instrs : Instr.t array;
  blocks : block array;
  block_of : int array;
  reachable : bool array;
  rpo : int array;
}

let falls_through (instr : Instr.t) =
  match instr with
  | Instr.Jump _ | Instr.Return | Instr.Return_void -> false
  | Instr.Const _ | Instr.Const_null | Instr.Load _ | Instr.Store _
  | Instr.Dup | Instr.Pop | Instr.Swap | Instr.Binop _ | Instr.Neg
  | Instr.Not | Instr.Cmp _ | Instr.Jump_if _ | Instr.Jump_ifnot _
  | Instr.New _ | Instr.Get_field _ | Instr.Put_field _ | Instr.Get_global _
  | Instr.Put_global _ | Instr.Array_new | Instr.Array_get | Instr.Array_set
  | Instr.Array_len | Instr.Call_static _ | Instr.Call_virtual _
  | Instr.Call_direct _ | Instr.Instance_of _ | Instr.Guard_method _
  | Instr.Print_int | Instr.Nop ->
      true

(* A position is a block boundary after any instruction that branches or
   terminates, even when it also falls through (guards, conditional
   jumps): rewrites and transfer functions must not merge across it. *)
let ends_block (instr : Instr.t) =
  match instr with
  | Instr.Jump _ | Instr.Jump_if _ | Instr.Jump_ifnot _
  | Instr.Guard_method _ | Instr.Return | Instr.Return_void ->
      true
  | Instr.Const _ | Instr.Const_null | Instr.Load _ | Instr.Store _
  | Instr.Dup | Instr.Pop | Instr.Swap | Instr.Binop _ | Instr.Neg
  | Instr.Not | Instr.Cmp _ | Instr.New _ | Instr.Get_field _
  | Instr.Put_field _ | Instr.Get_global _ | Instr.Put_global _
  | Instr.Array_new | Instr.Array_get | Instr.Array_set | Instr.Array_len
  | Instr.Call_static _ | Instr.Call_virtual _ | Instr.Call_direct _
  | Instr.Instance_of _ | Instr.Print_int | Instr.Nop ->
      false

let leaders instrs =
  let n = Array.length instrs in
  let is_leader = Array.make n false in
  if n > 0 then is_leader.(0) <- true;
  Array.iteri
    (fun pc instr ->
      List.iter
        (fun t -> if t >= 0 && t < n then is_leader.(t) <- true)
        (Instr.jump_targets instr);
      if ends_block instr && pc + 1 < n then is_leader.(pc + 1) <- true)
    instrs;
  is_leader

let reachable_instrs instrs =
  let n = Array.length instrs in
  let seen = Array.make n false in
  let stack = ref [ 0 ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | pc :: rest ->
        stack := rest;
        if pc >= 0 && pc < n && not seen.(pc) then begin
          seen.(pc) <- true;
          List.iter
            (fun t -> stack := t :: !stack)
            (Instr.jump_targets instrs.(pc));
          if falls_through instrs.(pc) then stack := (pc + 1) :: !stack
        end
  done;
  seen

let make_nonempty instrs n =
  let is_leader = leaders instrs in
  let nblocks = Array.fold_left (fun acc l -> if l then acc + 1 else acc) 0 is_leader in
  let block_of = Array.make n 0 in
  let firsts = Array.make (max 1 nblocks) 0 in
  let b = ref (-1) in
  for pc = 0 to n - 1 do
    if is_leader.(pc) then begin
      incr b;
      firsts.(!b) <- pc
    end;
    block_of.(pc) <- !b
  done;
  let last_of i = if i + 1 < nblocks then firsts.(i + 1) - 1 else n - 1 in
  let succs_of i =
    let last = last_of i in
    let instr = instrs.(last) in
    let targets =
      List.filter_map
        (fun t -> if t >= 0 && t < n then Some block_of.(t) else None)
        (Instr.jump_targets instr)
    in
    let fall =
      if falls_through instr && last + 1 < n then [ block_of.(last + 1) ]
      else []
    in
    (* fall-through first; dedupe while keeping order *)
    let rec dedupe seen = function
      | [] -> []
      | s :: rest ->
          if List.mem s seen then dedupe seen rest
          else s :: dedupe (s :: seen) rest
    in
    dedupe [] (fall @ targets)
  in
  let succs = Array.init (max 1 nblocks) succs_of in
  let preds = Array.make (max 1 nblocks) [] in
  Array.iteri
    (fun i ss -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss)
    succs;
  let blocks =
    Array.init (max 1 nblocks) (fun i ->
        {
          first = firsts.(i);
          last = last_of i;
          succs = succs.(i);
          preds = List.rev preds.(i);
        })
  in
  (* Reachability and postorder over blocks from block 0. *)
  let reachable = Array.make (max 1 nblocks) false in
  let post = ref [] in
  let rec dfs i =
    if not reachable.(i) then begin
      reachable.(i) <- true;
      List.iter dfs blocks.(i).succs;
      post := i :: !post
    end
  in
  dfs 0;
  let rpo = Array.of_list !post in
  { instrs; blocks; block_of; reachable; rpo }

let make instrs =
  let n = Array.length instrs in
  if n = 0 then
    { instrs; blocks = [||]; block_of = [||]; reachable = [||]; rpo = [||] }
  else make_nonempty instrs n

(* Cooper–Harvey–Kennedy iterative dominators over the RPO. *)
let dominators t =
  let nb = Array.length t.blocks in
  let idom = Array.make nb (-1) in
  if Array.length t.rpo = 0 then idom
  else begin
    let rpo_index = Array.make nb (-1) in
    Array.iteri (fun i b -> rpo_index.(b) <- i) t.rpo;
    idom.(t.rpo.(0)) <- t.rpo.(0);
    let rec intersect a b =
      if a = b then a
      else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
      else intersect a idom.(b)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iteri
        (fun i b ->
          if i > 0 then begin
            let new_idom =
              List.fold_left
                (fun acc p ->
                  if not t.reachable.(p) || idom.(p) = -1 then acc
                  else match acc with None -> Some p | Some a -> Some (intersect p a))
                None t.blocks.(b).preds
            in
            match new_idom with
            | None -> ()
            | Some d ->
                if idom.(b) <> d then begin
                  idom.(b) <- d;
                  changed := true
                end
          end)
        t.rpo
    done;
    idom
  end

let dominates t ~idom a b =
  let n = Array.length t.instrs in
  if a < 0 || b < 0 || a >= n || b >= n then false
  else
    let ba = t.block_of.(a) and bb = t.block_of.(b) in
    if (not t.reachable.(ba)) || not t.reachable.(bb) then false
    else if ba = bb then a <= b
    else
      (* does block [ba] dominate block [bb]? walk bb's idom chain *)
      let rec walk x =
        if x = ba then true
        else if x = idom.(x) then false (* reached entry *)
        else if idom.(x) = -1 then false
        else walk idom.(x)
      in
      walk bb
