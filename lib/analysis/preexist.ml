open Acsi_bytecode

(* Abstract value: [Param i] = still the method's original argument in
   slot [i]; anything computed, loaded from the heap, or merged from
   disagreeing paths is [Unknown]. The lattice has height 2, so the
   round-robin fixpoint below terminates quickly. *)
type av = Param of int | Unknown

let join a b =
  match (a, b) with Param i, Param j when i = j -> a | _ -> Unknown

type state = { locals : av array; stack : av list  (* head = top *) }

let join_state a b =
  let locals = Array.map2 join a.locals b.locals in
  let stack =
    if List.length a.stack = List.length b.stack then
      List.map2 join a.stack b.stack
    else
      (* Inconsistent depths never happen on verified bodies; degrade
         soundly rather than raise on corpus inputs. *)
      List.map (fun _ -> Unknown)
        (if List.length a.stack < List.length b.stack then a.stack
         else b.stack)
  in
  { locals; stack }

let transfer program (m : Meth.t) st pc (instr : Instr.t) =
  match instr with
  | Instr.Load i ->
      let v = if i < Array.length st.locals then st.locals.(i) else Unknown in
      { st with stack = v :: st.stack }
  | Instr.Store i -> (
      match st.stack with
      | v :: rest ->
          let locals = Array.copy st.locals in
          if i < Array.length locals then locals.(i) <- v;
          { locals; stack = rest }
      | [] -> st)
  | Instr.Dup -> (
      match st.stack with v :: _ -> { st with stack = v :: st.stack } | [] -> st)
  | Instr.Swap -> (
      match st.stack with
      | a :: b :: rest -> { st with stack = b :: a :: rest }
      | _ -> st)
  | _ ->
      let pops, pushes = Verify.effect_of program m pc instr in
      let rec drop k s =
        if k <= 0 then s else match s with _ :: r -> drop (k - 1) r | [] -> []
      in
      let rec push k s = if k <= 0 then s else push (k - 1) (Unknown :: s) in
      { st with stack = push pushes (drop pops st.stack) }

let successors n pc (instr : Instr.t) =
  let targets = Instr.jump_targets instr in
  let all = if Cfg.falls_through instr then (pc + 1) :: targets else targets in
  List.filter (fun t -> t >= 0 && t < n) all

let receiver_preexists program table (m : Meth.t) =
  let body = m.Meth.body in
  let n = Array.length body in
  let result = Array.make n false in
  if n = 0 then result
  else begin
    let nslots = Meth.param_slots m in
    let states : state option array = Array.make n None in
    let changed = ref true in
    let update pc st =
      match states.(pc) with
      | None ->
          states.(pc) <- Some st;
          changed := true
      | Some old ->
          let j = join_state old st in
          if j <> old then begin
            states.(pc) <- Some j;
            changed := true
          end
    in
    update 0
      {
        locals =
          Array.init (max m.Meth.max_locals nslots) (fun i ->
              if i < nslots then Param i else Unknown);
        stack = [];
      };
    while !changed do
      changed := false;
      for pc = 0 to n - 1 do
        match states.(pc) with
        | None -> ()
        | Some st ->
            let out = transfer program m st pc body.(pc) in
            List.iter (fun t -> update t out) (successors n pc body.(pc))
      done
    done;
    let escapes = (Summary.get table m.Meth.id).Summary.escapes in
    Array.iteri
      (fun pc instr ->
        match (instr, states.(pc)) with
        | Instr.Call_virtual (_, argc), Some st -> (
            match List.nth_opt st.stack argc with
            | Some (Param i) when i < Array.length escapes && not escapes.(i)
              ->
                result.(pc) <- true
            | _ -> ())
        | _ -> ())
      body;
    result
  end
