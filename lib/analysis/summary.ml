open Acsi_bytecode

type effects = {
  reads_heap : bool;
  writes_heap : bool;
  allocates : bool;
  io : bool;
}

type meth_summary = {
  meth : Ids.Method_id.t;
  units : int;
  size_est : int;
  effects : effects;
  pure : bool;
  escapes : bool array;
  returns_param : bool array;
  return_const : int option;
  always_throws : bool;
  mono_sites : (int * Ids.Method_id.t) list;
  virtual_sites : int;
  seed_sites : int;
}

type table = {
  program : Program.t;
  scc : Scc.t;
  table_rows : meth_summary array;
}

let no_effects =
  { reads_heap = false; writes_heap = false; allocates = false; io = false }

let all_effects =
  { reads_heap = true; writes_heap = true; allocates = true; io = true }

let join_effects a b =
  {
    reads_heap = a.reads_heap || b.reads_heap;
    writes_heap = a.writes_heap || b.writes_heap;
    allocates = a.allocates || b.allocates;
    io = a.io || b.io;
  }

let is_pure e = not (e.writes_heap || e.allocates || e.io)

(* Size classification mirrors {!Acsi_jit.Size} without depending on it
   (acsi_jit sits above the analysis layer): a call occupies 4 units and
   Tiny/Small are < 2x / < 5x a call. *)
let call_units = 4
let small_limit = 5 * call_units

(* --- constant propagation (per method) -------------------------------- *)

(* Abstract operand values: a known integer constant, a definite null, or
   anything. Folding mirrors the interpreter's [eval_binop]/[eval_cmp]
   exactly; where the runtime would trap (division by a known zero) the
   pc is recorded as a definite throw instead of folding. *)
type cval = Any | Cint of int | Cnull

let cjoin a b = if a = b then a else Any

type cstate = { clocals : cval array; cstack : cval list }

module Const_lattice = struct
  type t = cstate

  let equal a b = a.clocals = b.clocals && a.cstack = b.cstack

  let join a b =
    if List.length a.cstack <> List.length b.cstack then
      raise (Dataflow.Mismatch "operand-stack depth");
    {
      clocals = Array.map2 cjoin a.clocals b.clocals;
      cstack = List.map2 cjoin a.cstack b.cstack;
    }

  (* Every slot moves at most twice (value -> Any), so plain joins
     converge without widening. *)
  let widen _old joined = joined
end

module Const_flow = Dataflow.Forward (Const_lattice)

let cpush v st = { st with cstack = v :: st.cstack }

let cpop st =
  match st.cstack with
  | v :: rest -> (v, { st with cstack = rest })
  | [] -> raise (Dataflow.Mismatch "operand-stack underflow")

let cpop_n n st =
  let rec go n st = if n = 0 then st else go (n - 1) (snd (cpop st)) in
  go n st

let fold_binop op x y =
  match (op : Instr.binop) with
  | Instr.Add -> Some (x + y)
  | Instr.Sub -> Some (x - y)
  | Instr.Mul -> Some (x * y)
  | Instr.Div -> if y = 0 then None else Some (x / y)
  | Instr.Rem -> if y = 0 then None else Some (x mod y)
  | Instr.And -> Some (x land y)
  | Instr.Or -> Some (x lor y)
  | Instr.Xor -> Some (x lxor y)
  | Instr.Shl -> Some (x lsl (y land 63))
  | Instr.Shr -> Some (x asr (y land 63))

let fold_cmp c a b =
  match (c : Instr.cmp) with
  | Instr.Eq -> (
      match (a, b) with
      | Cint x, Cint y -> Some (if x = y then 1 else 0)
      | Cnull, Cnull -> Some 1
      | Cint _, Cnull | Cnull, Cint _ -> Some 0
      | Any, _ | _, Any -> None)
  | Instr.Ne -> (
      match (a, b) with
      | Cint x, Cint y -> Some (if x <> y then 1 else 0)
      | Cnull, Cnull -> Some 0
      | Cint _, Cnull | Cnull, Cint _ -> Some 1
      | Any, _ | _, Any -> None)
  | Instr.Lt -> (
      match (a, b) with Cint x, Cint y -> Some (if x < y then 1 else 0) | _ -> None)
  | Instr.Le -> (
      match (a, b) with Cint x, Cint y -> Some (if x <= y then 1 else 0) | _ -> None)
  | Instr.Gt -> (
      match (a, b) with Cint x, Cint y -> Some (if x > y then 1 else 0) | _ -> None)
  | Instr.Ge -> (
      match (a, b) with Cint x, Cint y -> Some (if x >= y then 1 else 0) | _ -> None)

(* --- parameter-taint (escape) analysis -------------------------------- *)

(* Each abstract value is the bitset of parameter slots it may alias.
   Taint propagates only through moves (loads, stores, dup/swap) and
   through callees' returns-its-parameter summaries: arithmetic produces
   fresh integers and heap reads produce heap values, neither of which
   IS a parameter. *)
type tstate = { tlocals : int array; tstack : int list }

module Taint_lattice = struct
  type t = tstate

  let equal a b = a.tlocals = b.tlocals && a.tstack = b.tstack

  let join a b =
    if List.length a.tstack <> List.length b.tstack then
      raise (Dataflow.Mismatch "operand-stack depth");
    {
      tlocals = Array.map2 ( lor ) a.tlocals b.tlocals;
      tstack = List.map2 ( lor ) a.tstack b.tstack;
    }

  let widen _old joined = joined
end

module Taint_flow = Dataflow.Forward (Taint_lattice)

let tpush v st = { st with tstack = v :: st.tstack }

let tpop st =
  match st.tstack with
  | v :: rest -> (v, { st with tstack = rest })
  | [] -> raise (Dataflow.Mismatch "operand-stack underflow")

let tpop_n n st =
  let rec go n acc st =
    if n = 0 then (acc, st)
    else
      let v, st = tpop st in
      go (n - 1) (v :: acc) st
  in
  (* Returns taints in parameter order: slot 0 first (pushed deepest). *)
  go n [] st

(* Maximum parameter count the int bitset can carry; beyond it the
   method gets a conservative all-escape row (never hit in practice). *)
let max_taint_params = 60

(* --- the bottom-up pass ----------------------------------------------- *)

type ctx = {
  p : Program.t;
  cg : Scc.t;
  rows_ : meth_summary array;  (* final rows, valid for comps < current *)
  (* working facts, optimistically initialized and monotonically grown
     during the current component's fixpoint *)
  w_eff : effects array;
  w_esc : int array;  (* escape bitsets *)
  w_retp : int array;  (* returns-parameter bitsets *)
}

let conservative_row (m : Meth.t) =
  let slots = Meth.param_slots m in
  {
    meth = m.Meth.id;
    units = Meth.size_units m;
    size_est = Meth.size_units m;
    effects = all_effects;
    pure = false;
    escapes = Array.make slots true;
    returns_param = Array.make slots true;
    return_const = None;
    always_throws = false;
    mono_sites = [];
    virtual_sites =
      Array.fold_left
        (fun acc i ->
          match i with Instr.Call_virtual _ -> acc + 1 | _ -> acc)
        0 m.Meth.body;
    seed_sites = 0;
  }

let same_comp ctx comp (mid : Ids.Method_id.t) =
  Scc.component_of ctx.cg mid = comp

(* Abstract result value of a call, from callee summaries; calls inside
   the current component are opaque. *)
let ret_cval ctx comp targets =
  let one mid =
    if same_comp ctx comp mid then Any
    else
      match ctx.rows_.((mid :> int)).return_const with
      | Some k -> Cint k
      | None -> Any
  in
  match targets with
  | [] -> Any
  | first :: rest ->
      List.fold_left (fun acc mid -> cjoin acc (one mid)) (one first) rest

let const_transfer ctx comp ~pc:_ (instr : Instr.t) st =
  match instr with
  | Instr.Const n -> cpush (Cint n) st
  | Instr.Const_null -> cpush Cnull st
  | Instr.Load i -> cpush st.clocals.(i) st
  | Instr.Store i ->
      let v, st = cpop st in
      let clocals = Array.copy st.clocals in
      clocals.(i) <- v;
      { st with clocals }
  | Instr.Dup ->
      let v, _ = cpop st in
      cpush v st
  | Instr.Pop -> snd (cpop st)
  | Instr.Swap ->
      let b, st = cpop st in
      let a, st = cpop st in
      cpush a (cpush b st)
  | Instr.Binop op ->
      let b, st = cpop st in
      let a, st = cpop st in
      let v =
        match (a, b) with
        | Cint x, Cint y -> (
            match fold_binop op x y with Some r -> Cint r | None -> Any)
        | (Any | Cnull | Cint _), _ -> Any
      in
      cpush v st
  | Instr.Neg ->
      let a, st = cpop st in
      cpush (match a with Cint x -> Cint (-x) | Any | Cnull -> Any) st
  | Instr.Not ->
      let a, st = cpop st in
      (* [Value.truthy]: null and 0 are falsy, everything else truthy. *)
      cpush
        (match a with
        | Cint x -> Cint (if x = 0 then 1 else 0)
        | Cnull -> Cint 1
        | Any -> Any)
        st
  | Instr.Cmp c ->
      let b, st = cpop st in
      let a, st = cpop st in
      cpush (match fold_cmp c a b with Some r -> Cint r | None -> Any) st
  | Instr.Jump _ -> st
  | Instr.Jump_if _ | Instr.Jump_ifnot _ -> snd (cpop st)
  | Instr.New _ -> cpush Any st
  | Instr.Get_field _ ->
      let _, st = cpop st in
      cpush Any st
  | Instr.Put_field _ -> cpop_n 2 st
  | Instr.Get_global _ -> cpush Any st
  | Instr.Put_global _ -> snd (cpop st)
  | Instr.Array_new ->
      let _, st = cpop st in
      cpush Any st
  | Instr.Array_get -> cpush Any (cpop_n 2 st)
  | Instr.Array_set -> cpop_n 3 st
  | Instr.Array_len ->
      let _, st = cpop st in
      cpush Any st
  | Instr.Call_static mid ->
      let callee = Program.meth ctx.p mid in
      let st = cpop_n callee.Meth.arity st in
      if callee.Meth.returns then cpush (ret_cval ctx comp [ mid ]) st else st
  | Instr.Call_direct mid ->
      let callee = Program.meth ctx.p mid in
      let st = cpop_n (callee.Meth.arity + 1) st in
      if callee.Meth.returns then cpush (ret_cval ctx comp [ mid ]) st else st
  | Instr.Call_virtual (sel, argc) ->
      let impls = Program.implementations ctx.p sel in
      let st = cpop_n (argc + 1) st in
      let returns =
        match impls with
        | [] -> false
        | mid :: _ -> (Program.meth ctx.p mid).Meth.returns
      in
      if returns then cpush (ret_cval ctx comp impls) st else st
  | Instr.Return -> snd (cpop st)
  | Instr.Return_void -> st
  | Instr.Instance_of _ ->
      let a, st = cpop st in
      cpush (match a with Cnull -> Cint 0 | Any | Cint _ -> Any) st
  | Instr.Guard_method _ -> st
  | Instr.Print_int -> snd (cpop st)
  | Instr.Nop -> st

(* Pcs where execution definitely traps given the converged constant
   states: division/remainder by a known zero, dereference of a definite
   null, a negative constant array size. *)
let definite_throws (m : Meth.t) (states : cstate option array) =
  let body = m.Meth.body in
  let throws = Array.make (Array.length body) false in
  let peek n st = List.nth st.cstack n in
  Array.iteri
    (fun pc st ->
      match st with
      | None -> ()
      | Some st -> (
          match body.(pc) with
          | Instr.Binop (Instr.Div | Instr.Rem) ->
              if peek 0 st = Cint 0 then throws.(pc) <- true
          | Instr.Get_field _ | Instr.Array_len ->
              if peek 0 st = Cnull then throws.(pc) <- true
          | Instr.Put_field _ | Instr.Array_get ->
              if peek 1 st = Cnull then throws.(pc) <- true
          | Instr.Array_set ->
              if peek 2 st = Cnull then throws.(pc) <- true
          | Instr.Array_new -> (
              match peek 0 st with
              | Cint k when k < 0 -> throws.(pc) <- true
              | Cint _ | Any | Cnull -> ())
          | Instr.Const _ | Instr.Const_null | Instr.Load _ | Instr.Store _
          | Instr.Dup | Instr.Pop | Instr.Swap
          | Instr.Binop
              ( Instr.Add | Instr.Sub | Instr.Mul | Instr.And | Instr.Or
              | Instr.Xor | Instr.Shl | Instr.Shr )
          | Instr.Neg | Instr.Not | Instr.Cmp _ | Instr.Jump _
          | Instr.Jump_if _ | Instr.Jump_ifnot _ | Instr.New _
          | Instr.Get_global _ | Instr.Put_global _ | Instr.Call_static _
          | Instr.Call_virtual _ | Instr.Call_direct _ | Instr.Return
          | Instr.Return_void | Instr.Instance_of _ | Instr.Guard_method _
          | Instr.Print_int | Instr.Nop ->
              ()))
    states;
  throws

(* Reachability refined by definite throws and by calls whose every
   target is proven always-throwing: neither falls through. *)
let refined_reachable ctx comp (m : Meth.t) throws =
  let body = m.Meth.body in
  let n = Array.length body in
  let callee_throws mid =
    (not (same_comp ctx comp mid)) && ctx.rows_.((mid :> int)).always_throws
  in
  let live = Array.make n false in
  let q = Queue.create () in
  let visit pc =
    if pc >= 0 && pc < n && not live.(pc) then begin
      live.(pc) <- true;
      Queue.add pc q
    end
  in
  visit 0;
  while not (Queue.is_empty q) do
    let pc = Queue.pop q in
    let instr = body.(pc) in
    List.iter visit (Instr.jump_targets instr);
    let falls =
      Cfg.falls_through instr
      && (not throws.(pc))
      &&
      if Instr.is_call instr then
        match Scc.call_targets ctx.p instr with
        | [] -> true
        | targets -> not (List.for_all callee_throws targets)
      else true
    in
    if falls then visit (pc + 1)
  done;
  live

let taint_transfer ctx comp ~pc:_ (instr : Instr.t) st =
  let call_result targets arg_taints =
    List.fold_left
      (fun acc mid ->
        let retp =
          if same_comp ctx comp mid then ctx.w_retp.((mid :> int))
          else
            let r = ctx.rows_.((mid :> int)) in
            let bits = ref 0 in
            Array.iteri
              (fun j b -> if b then bits := !bits lor (1 lsl j))
              r.returns_param;
            !bits
        in
        let t = ref acc in
        List.iteri
          (fun j taint -> if retp land (1 lsl j) <> 0 then t := !t lor taint)
          arg_taints;
        !t)
      0 targets
  in
  match instr with
  | Instr.Const _ | Instr.Const_null | Instr.New _ | Instr.Get_global _ ->
      tpush 0 st
  | Instr.Load i -> tpush st.tlocals.(i) st
  | Instr.Store i ->
      let v, st = tpop st in
      let tlocals = Array.copy st.tlocals in
      tlocals.(i) <- v;
      { st with tlocals }
  | Instr.Dup ->
      let v, _ = tpop st in
      tpush v st
  | Instr.Pop | Instr.Put_global _ | Instr.Print_int | Instr.Return ->
      snd (tpop st)
  | Instr.Swap ->
      let b, st = tpop st in
      let a, st = tpop st in
      tpush a (tpush b st)
  | Instr.Binop _ | Instr.Cmp _ -> tpush 0 (snd (tpop (snd (tpop st))))
  | Instr.Neg | Instr.Not | Instr.Instance_of _ | Instr.Array_len
  | Instr.Array_new ->
      tpush 0 (snd (tpop st))
  | Instr.Get_field _ -> tpush 0 (snd (tpop st))
  | Instr.Jump _ | Instr.Return_void | Instr.Guard_method _ | Instr.Nop -> st
  | Instr.Jump_if _ | Instr.Jump_ifnot _ -> snd (tpop st)
  | Instr.Put_field _ -> snd (tpop (snd (tpop st)))
  | Instr.Array_get -> tpush 0 (snd (tpop (snd (tpop st))))
  | Instr.Array_set -> snd (tpop (snd (tpop (snd (tpop st)))))
  | Instr.Call_static mid ->
      let callee = Program.meth ctx.p mid in
      let args, st = tpop_n callee.Meth.arity st in
      if callee.Meth.returns then tpush (call_result [ mid ] args) st else st
  | Instr.Call_direct mid ->
      let callee = Program.meth ctx.p mid in
      let args, st = tpop_n (callee.Meth.arity + 1) st in
      if callee.Meth.returns then tpush (call_result [ mid ] args) st else st
  | Instr.Call_virtual (sel, argc) ->
      let impls = Program.implementations ctx.p sel in
      let args, st = tpop_n (argc + 1) st in
      let returns =
        match impls with
        | [] -> false
        | mid :: _ -> (Program.meth ctx.p mid).Meth.returns
      in
      if returns then tpush (call_result impls args) st else st

(* Escape and returns-parameter events, read off the converged taint
   states: values stored into heap objects, arrays or globals escape;
   values passed at a parameter position the callee lets escape do too;
   a returned taint feeds [returns_param]. *)
let taint_events ctx comp (m : Meth.t) (states : tstate option array) =
  let body = m.Meth.body in
  let esc = ref 0 in
  let retp = ref 0 in
  let callee_esc mid =
    if same_comp ctx comp mid then ctx.w_esc.((mid :> int))
    else begin
      let r = ctx.rows_.((mid :> int)) in
      let bits = ref 0 in
      Array.iteri (fun j b -> if b then bits := !bits lor (1 lsl j)) r.escapes;
      !bits
    end
  in
  let call_escapes targets nslots st =
    (* Parameter j sits at stack depth [nslots - 1 - j]. *)
    List.iter
      (fun mid ->
        let ce = callee_esc mid in
        for j = 0 to nslots - 1 do
          if ce land (1 lsl j) <> 0 then
            esc := !esc lor List.nth st.tstack (nslots - 1 - j)
        done)
      targets
  in
  Array.iteri
    (fun pc st ->
      match st with
      | None -> ()
      | Some st -> (
          match body.(pc) with
          | Instr.Put_field _ | Instr.Put_global _ | Instr.Array_set ->
              esc := !esc lor List.hd st.tstack
          | Instr.Return -> retp := !retp lor List.hd st.tstack
          | Instr.Call_static mid ->
              call_escapes [ mid ] (Program.meth ctx.p mid).Meth.arity st
          | Instr.Call_direct mid ->
              call_escapes [ mid ] ((Program.meth ctx.p mid).Meth.arity + 1) st
          | Instr.Call_virtual (sel, argc) ->
              call_escapes (Program.implementations ctx.p sel) (argc + 1) st
          | Instr.Const _ | Instr.Const_null | Instr.Load _ | Instr.Store _
          | Instr.Dup | Instr.Pop | Instr.Swap | Instr.Binop _ | Instr.Neg
          | Instr.Not | Instr.Cmp _ | Instr.Jump _ | Instr.Jump_if _
          | Instr.Jump_ifnot _ | Instr.New _ | Instr.Get_field _
          | Instr.Get_global _ | Instr.Array_new | Instr.Array_get
          | Instr.Array_len | Instr.Return_void | Instr.Instance_of _
          | Instr.Guard_method _ | Instr.Print_int | Instr.Nop ->
              ()))
    states;
  (!esc, !retp)

(* Direct (one-instruction) effects plus the transitive join over every
   possible callee of every reachable call. *)
let effects_pass ctx comp (m : Meth.t) reachable =
  let eff = ref no_effects in
  Array.iteri
    (fun pc instr ->
      if reachable.(pc) then begin
        (match (instr : Instr.t) with
        | Instr.Get_field _ | Instr.Array_get | Instr.Array_len
        | Instr.Get_global _ ->
            eff := { !eff with reads_heap = true }
        | Instr.Put_field _ | Instr.Array_set | Instr.Put_global _ ->
            eff := { !eff with writes_heap = true }
        | Instr.New _ | Instr.Array_new -> eff := { !eff with allocates = true }
        | Instr.Print_int -> eff := { !eff with io = true }
        | Instr.Const _ | Instr.Const_null | Instr.Load _ | Instr.Store _
        | Instr.Dup | Instr.Pop | Instr.Swap | Instr.Binop _ | Instr.Neg
        | Instr.Not | Instr.Cmp _ | Instr.Jump _ | Instr.Jump_if _
        | Instr.Jump_ifnot _ | Instr.Call_static _ | Instr.Call_virtual _
        | Instr.Call_direct _ | Instr.Return | Instr.Return_void
        | Instr.Instance_of _ | Instr.Guard_method _ | Instr.Nop ->
            ());
        List.iter
          (fun mid ->
            let callee_eff =
              if same_comp ctx comp mid then ctx.w_eff.((mid :> int))
              else ctx.rows_.((mid :> int)).effects
            in
            eff := join_effects !eff callee_eff)
          (Scc.call_targets ctx.p instr)
      end)
    m.Meth.body;
  !eff

(* The call sites the static oracle provably benefits from: a single
   possible target (statically bound, or a CHA-monomorphic virtual) that
   lives outside the method's own component, whose post-inlining size is
   Tiny or Small. [for_seed] additionally excludes always-throwing
   targets — inlining those wins nothing at install time. *)
let unique_target ctx (instr : Instr.t) =
  match instr with
  | Instr.Call_static mid | Instr.Call_direct mid -> Some mid
  | Instr.Call_virtual (sel, _) -> Program.monomorphic_target ctx.p sel
  | Instr.Const _ | Instr.Const_null | Instr.Load _ | Instr.Store _
  | Instr.Dup | Instr.Pop | Instr.Swap | Instr.Binop _ | Instr.Neg
  | Instr.Not | Instr.Cmp _ | Instr.Jump _ | Instr.Jump_if _
  | Instr.Jump_ifnot _ | Instr.New _ | Instr.Get_field _ | Instr.Put_field _
  | Instr.Get_global _ | Instr.Put_global _ | Instr.Array_new
  | Instr.Array_get | Instr.Array_set | Instr.Array_len | Instr.Return
  | Instr.Return_void | Instr.Instance_of _ | Instr.Guard_method _
  | Instr.Print_int | Instr.Nop ->
      None

let finalize_row ctx comp (m : Meth.t) =
  let mid = m.Meth.id in
  let slots = Meth.param_slots m in
  let units = Meth.size_units m in
  let cfg = Cfg.make m.Meth.body in
  let init =
    { clocals = Array.make (max 1 m.Meth.max_locals) Any; cstack = [] }
  in
  let cstates =
    Const_flow.run cfg ~init ~transfer:(const_transfer ctx comp) ()
  in
  let throws = definite_throws m cstates in
  let live = refined_reachable ctx comp m throws in
  let always_throws =
    let has_return = ref false in
    Array.iteri
      (fun pc instr ->
        match (instr : Instr.t) with
        | Instr.Return | Instr.Return_void ->
            if live.(pc) && not throws.(pc) then has_return := true
        | _ -> ())
      m.Meth.body;
    not !has_return
  in
  let return_const =
    if not m.Meth.returns then None
    else begin
      let acc = ref None in
      (* [None] = no return seen yet; [Some Any] = conflicting. *)
      Array.iteri
        (fun pc instr ->
          match (instr : Instr.t) with
          | Instr.Return when live.(pc) && not throws.(pc) -> (
              let v =
                match cstates.(pc) with
                | Some st -> List.hd st.cstack
                | None -> Any
              in
              match !acc with
              | None -> acc := Some v
              | Some prev -> acc := Some (cjoin prev v))
          | _ -> ())
        m.Meth.body;
      match !acc with Some (Cint k) -> Some k | Some (Any | Cnull) | None -> None
    end
  in
  let mono_sites = ref [] in
  let virtual_sites = ref 0 in
  Array.iteri
    (fun pc instr ->
      match (instr : Instr.t) with
      | Instr.Call_virtual (sel, _) ->
          incr virtual_sites;
          (match Program.monomorphic_target ctx.p sel with
          | Some target -> mono_sites := (pc, target) :: !mono_sites
          | None -> ())
      | _ -> ())
    m.Meth.body;
  let size_est = ref units in
  let seed_sites = ref 0 in
  Array.iteri
    (fun pc instr ->
      if live.(pc) then
        match unique_target ctx instr with
        | Some tgt when not (same_comp ctx comp tgt) ->
            let r = ctx.rows_.((tgt :> int)) in
            if r.size_est < small_limit then begin
              size_est := !size_est + (r.size_est - 1);
              if not r.always_throws then incr seed_sites
            end
        | Some _ | None -> ())
    m.Meth.body;
  let esc_bits = ctx.w_esc.((mid :> int)) in
  let retp_bits = ctx.w_retp.((mid :> int)) in
  {
    meth = mid;
    units;
    size_est = !size_est;
    effects = ctx.w_eff.((mid :> int));
    pure = is_pure ctx.w_eff.((mid :> int));
    escapes = Array.init slots (fun j -> esc_bits land (1 lsl j) <> 0);
    returns_param = Array.init slots (fun j -> retp_bits land (1 lsl j) <> 0);
    return_const;
    always_throws;
    mono_sites = List.rev !mono_sites;
    virtual_sites = !virtual_sites;
    seed_sites = !seed_sites;
  }

let analyze_component ctx comp =
  let members = Scc.members ctx.cg comp in
  let conservative m =
    let i = (m.Meth.id :> int) in
    ctx.w_eff.(i) <- all_effects;
    ctx.w_esc.(i) <- -1;
    ctx.w_retp.(i) <- -1;
    ctx.rows_.(i) <- conservative_row m
  in
  (* Fixpoint on the monotone facts (effects, escape, returns-param). *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun mid ->
        let m = Program.meth ctx.p mid in
        let i = (mid :> int) in
        try
          let reachable = Cfg.reachable_instrs m.Meth.body in
          let eff = effects_pass ctx comp m reachable in
          let esc, retp =
            if Meth.param_slots m > max_taint_params then (-1, -1)
            else begin
              let cfg = Cfg.make m.Meth.body in
              let tlocals = Array.make (max 1 m.Meth.max_locals) 0 in
              for j = 0 to Meth.param_slots m - 1 do
                tlocals.(j) <- 1 lsl j
              done;
              let states =
                Taint_flow.run cfg ~init:{ tlocals; tstack = [] }
                  ~transfer:(taint_transfer ctx comp) ()
              in
              taint_events ctx comp m states
            end
          in
          let eff' = join_effects eff ctx.w_eff.(i) in
          let esc' = ctx.w_esc.(i) lor esc in
          let retp' = ctx.w_retp.(i) lor retp in
          if
            eff' <> ctx.w_eff.(i) || esc' <> ctx.w_esc.(i)
            || retp' <> ctx.w_retp.(i)
          then begin
            changed := true;
            ctx.w_eff.(i) <- eff';
            ctx.w_esc.(i) <- esc';
            ctx.w_retp.(i) <- retp'
          end
        with _ ->
          if
            ctx.w_eff.(i) <> all_effects || ctx.w_esc.(i) <> -1
            || ctx.w_retp.(i) <> -1
          then begin
            changed := true;
            ctx.w_eff.(i) <- all_effects;
            ctx.w_esc.(i) <- -1;
            ctx.w_retp.(i) <- -1
          end)
      members
  done;
  Array.iter
    (fun mid ->
      let m = Program.meth ctx.p mid in
      match finalize_row ctx comp m with
      | row -> ctx.rows_.((mid :> int)) <- row
      | exception _ -> conservative m)
    members

let analyze p =
  let ms = Program.methods p in
  let n = Array.length ms in
  let cg = Scc.of_program p in
  let dummy = conservative_row ms.(0) in
  let ctx =
    {
      p;
      cg;
      rows_ = Array.make n dummy;
      w_eff = Array.make n no_effects;
      w_esc = Array.make n 0;
      w_retp = Array.make n 0;
    }
  in
  for comp = 0 to Scc.count cg - 1 do
    analyze_component ctx comp
  done;
  { program = p; scc = cg; table_rows = ctx.rows_ }

let get t (mid : Ids.Method_id.t) = t.table_rows.((mid :> int))
let scc t = t.scc
let rows t = t.table_rows
let seed_worthy t mid = (get t mid).seed_sites > 0

let seed_candidates t =
  Array.to_list t.table_rows
  |> List.filter_map (fun r -> if r.seed_sites > 0 then Some r.meth else None)

let effects_to_string e =
  if is_pure e && not e.reads_heap then "pure"
  else
    let parts =
      (if e.reads_heap then [ "rd" ] else [])
      @ (if e.writes_heap then [ "wr" ] else [])
      @ (if e.allocates then [ "al" ] else [])
      @ if e.io then [ "io" ] else []
    in
    if parts = [] then "pure" else String.concat "+" parts

let size_class_name units =
  if units < 2 * call_units then "tiny"
  else if units < 5 * call_units then "small"
  else if units < 25 * call_units then "medium"
  else "large"

let slots_to_string a =
  let hits = ref [] in
  Array.iteri (fun i b -> if b then hits := i :: !hits) a;
  if !hits = [] then "-"
  else String.concat "," (List.rev_map string_of_int !hits)

let print fmt p t =
  let qualified m =
    let owner = (Program.clazz p m.Meth.owner).Clazz.name in
    Printf.sprintf "%s.%s/%d" owner m.Meth.name m.Meth.arity
  in
  Format.fprintf fmt "%-36s %5s %5s %-6s %-9s %-7s %-6s %-6s %s@."
    "method" "units" "est" "class" "effects" "escapes" "ret" "throws"
    "mono";
  let pure = ref 0 and throwing = ref 0 in
  let mono = ref 0 and virt = ref 0 and seeds = ref 0 in
  Array.iter
    (fun (r : meth_summary) ->
      let m = Program.meth p r.meth in
      if r.pure then incr pure;
      if r.always_throws then incr throwing;
      mono := !mono + List.length r.mono_sites;
      virt := !virt + r.virtual_sites;
      if r.seed_sites > 0 then incr seeds;
      Format.fprintf fmt "%-36s %5d %5d %-6s %-9s %-7s %-6s %-6s %d/%d@."
        (qualified m) r.units r.size_est
        (size_class_name r.size_est)
        (effects_to_string r.effects)
        (slots_to_string r.escapes)
        (match r.return_const with Some k -> string_of_int k | None -> "-")
        (if r.always_throws then "yes" else "-")
        (List.length r.mono_sites)
        r.virtual_sites)
    t.table_rows;
  Format.fprintf fmt
    "%d methods: %d pure, %d always-throw, %d/%d virtual sites monomorphic, \
     %d static-seed candidates@."
    (Array.length t.table_rows)
    !pure !throwing !mono !virt !seeds
