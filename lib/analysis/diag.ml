type t = { meth : string; pc : int option; message : string }

exception Error of t

let make ~meth ?pc message = { meth; pc; message }

let error ~meth ?pc fmt =
  Format.kasprintf (fun message -> raise (Error { meth; pc; message })) fmt

let to_string d =
  match (d.meth, d.pc) with
  | "", _ -> d.message
  | m, Some pc -> Printf.sprintf "%s:%d: %s" m pc d.message
  | m, None -> Printf.sprintf "%s: %s" m d.message

(* Verify.Error messages are already "method:pc: message"; keep them
   whole in [message] with no separate method/pc so printing does not
   duplicate the prefix. *)
let of_verify_error msg = { meth = ""; pc = None; message = msg }

let () =
  Printexc.register_printer (function
    | Error d -> Some ("Diag.Error: " ^ to_string d)
    | _ -> None)

let pp fmt d =
  match (d.meth, d.pc) with
  | "", _ -> Format.pp_print_string fmt d.message
  | m, Some pc -> Format.fprintf fmt "%s:%d: %s" m pc d.message
  | m, None -> Format.fprintf fmt "%s: %s" m d.message
