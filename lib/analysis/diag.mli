(** Analysis diagnostics.

    Every checker in this library ({!Typecheck}, {!Jit_check}, {!Lint})
    reports findings in one uniform shape so drivers can print them as
    [method:pc: message] lines (the format the CLI's [--verify] flag and
    the [@lint] alias promise). *)

type t = {
  meth : string;  (** method name (the JIT appends ["$opt"] to roots) *)
  pc : int option;  (** offending pc, when the finding has one *)
  message : string;
}

exception Error of t
(** Raised by the [_exn] entry points; collecting entry points return
    lists instead. *)

val make : meth:string -> ?pc:int -> string -> t

val error : meth:string -> ?pc:int -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Format and raise {!Error}. *)

val to_string : t -> string
(** [method:pc: message], or [method: message] when no pc applies. *)

val of_verify_error : string -> t
(** Wrap a {!Acsi_bytecode.Verify.Error} message (already formatted as
    [method:pc: message]) without double-prefixing. *)

val pp : Format.formatter -> t -> unit
