(** Typed abstract interpretation of method bodies.

    Runs the {!Dataflow} engine with the {!Ty} kind lattice over every
    local and operand-stack slot, then re-walks the converged states
    reporting definite errors: int operations on references,
    field/array access on ints, virtual calls no class in the
    receiver's cone can answer, [Call_direct] on an unrelated receiver
    class, and any use of a value that is an int on one path and a
    reference on another ("type clash at join").

    Checking happens at the fixpoint only — never during propagation —
    because early, precise states can flag uses the converged (wider)
    state permits. Stack shapes come from {!Acsi_bytecode.Verify.effect_of},
    the transfer table shared with the depth verifier; run
    {!Acsi_bytecode.Verify.meth} first so shape errors are reported in
    their canonical form.

    On the fall-through edge of a [Guard_method] the receiver slot is
    narrowed to the expected target's owner class: passing the guard
    proves the runtime class dispatches to that exact method, which
    only classes under its owner can. *)

open Acsi_bytecode

type state = {
  locals : Ty.t array;
  stack : Ty.t list;  (** top of stack first *)
}

val entry_state : Program.t -> Meth.t -> state
(** All locals [Top] (parameters are untyped and uninitialized slots
    are only read on paths the runtime also takes), except slot 0 of an
    instance method, which holds [Ref owner]. *)

val analyze : Program.t -> Meth.t -> state option array
(** Converged in-state per pc; [None] for unreachable code. May raise
    {!Acsi_bytecode.Verify.Error} (shape problems) or
    {!Dataflow.Join_error} on malformed bodies. *)

val meth_diags : Program.t -> Meth.t -> Diag.t list
(** All definite type errors, in pc order. Never raises: shape and
    join failures become diagnostics. *)

val check_meth : Program.t -> Meth.t -> unit
(** Raises {!Diag.Error} with the first diagnostic, if any. *)

val program : Program.t -> unit
(** {!check_meth} over every method of the program. *)
