open Acsi_bytecode

exception Mismatch of string
exception Join_error of { pc : int; message : string }

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
end

module Forward (L : LATTICE) = struct
  let run (cfg : Cfg.t) ~init ~transfer
      ?(refine_edge = fun ~pc:_ _ ~target:_ ~fall:_ s -> s)
      ?(widen_after = 64) () =
    let n = Array.length cfg.Cfg.instrs in
    let states = Array.make n None in
    if n = 0 then states
    else begin
      let nb = Array.length cfg.Cfg.blocks in
      let block_in = Array.make nb None in
      let join_count = Array.make nb 0 in
      let on_work = Array.make nb false in
      let queue = Queue.create () in
      block_in.(0) <- Some init;
      Queue.add 0 queue;
      on_work.(0) <- true;
      while not (Queue.is_empty queue) do
        let b = Queue.pop queue in
        on_work.(b) <- false;
        match block_in.(b) with
        | None -> ()
        | Some s0 ->
            let blk = cfg.Cfg.blocks.(b) in
            let s = ref s0 in
            for pc = blk.Cfg.first to blk.Cfg.last do
              states.(pc) <- Some !s;
              s := transfer ~pc cfg.Cfg.instrs.(pc) !s
            done;
            let last = blk.Cfg.last in
            let last_instr = cfg.Cfg.instrs.(last) in
            let branch_targets = Instr.jump_targets last_instr in
            let out = !s in
            List.iter
              (fun succ ->
                let target = cfg.Cfg.blocks.(succ).Cfg.first in
                (* A pure fall-through edge: reaches [last + 1] by
                   falling and is not also a branch target of the same
                   instruction (a guard whose fail is pc + 1 must not
                   be narrowed). *)
                let fall =
                  target = last + 1
                  && Cfg.falls_through last_instr
                  && not (List.mem target branch_targets)
                in
                let refined = refine_edge ~pc:last last_instr ~target ~fall out in
                let updated =
                  match block_in.(succ) with
                  | None -> Some refined
                  | Some old ->
                      let joined =
                        try L.join old refined
                        with Mismatch message ->
                          raise (Join_error { pc = target; message })
                      in
                      let joined =
                        if join_count.(succ) > widen_after then
                          L.widen old joined
                        else joined
                      in
                      if L.equal joined old then None else Some joined
                in
                match updated with
                | None -> ()
                | Some next ->
                    block_in.(succ) <- Some next;
                    join_count.(succ) <- join_count.(succ) + 1;
                    if not on_work.(succ) then begin
                      Queue.add succ queue;
                      on_work.(succ) <- true
                    end)
              blk.Cfg.succs
      done;
      states
    end
end
