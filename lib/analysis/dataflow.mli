(** Generic forward dataflow engine over {!Cfg} block graphs.

    A worklist fixpoint over basic blocks with a pluggable lattice. The
    engine records the converged in-state of every reachable
    instruction, which is what checkers want: they re-run the transfer
    function once over the fixpoint and report definite errors there
    (raising during propagation would be non-monotone — an early,
    precise state can err where the converged one does not). *)

open Acsi_bytecode

exception Mismatch of string
(** Raised by a lattice [join] when the two states have incompatible
    shapes (e.g. different stack depths). The engine rethrows it as
    {!Join_error} with the join point attached. *)

exception Join_error of { pc : int; message : string }

module type LATTICE = sig
  type t

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** May raise {!Mismatch}. *)

  val widen : t -> t -> t
  (** [widen old joined]; applied in place of the plain join once a
      block has been re-joined more than [widen_after] times. Finite
      lattices can return [joined] unchanged. *)
end

module Forward (L : LATTICE) : sig
  val run :
    Cfg.t ->
    init:L.t ->
    transfer:(pc:int -> Instr.t -> L.t -> L.t) ->
    ?refine_edge:(pc:int -> Instr.t -> target:int -> fall:bool -> L.t -> L.t) ->
    ?widen_after:int ->
    unit ->
    L.t option array
  (** Converged in-state per pc; [None] for unreachable instructions.
      [refine_edge] adjusts the out-state flowing along one edge —
      [fall] is true only for a pure fall-through edge (not also a
      branch target of the same instruction), which is where guard
      narrowing is sound. *)
end
