open Acsi_bytecode

type t =
  | Bot
  | Int
  | Null
  | Ref of Ids.Class_id.t
  | Arr
  | Any_ref
  | Conflict
  | Top

let equal a b =
  match (a, b) with
  | Ref c1, Ref c2 -> Ids.Class_id.equal c1 c2
  | Bot, Bot | Int, Int | Null, Null | Arr, Arr | Any_ref, Any_ref
  | Conflict, Conflict | Top, Top ->
      true
  | _, _ -> false

(* The class and its ancestors, nearest first. *)
let ancestors p c =
  let rec up c acc =
    let acc = c :: acc in
    match (Program.clazz p c).Clazz.parent with
    | None -> List.rev acc
    | Some parent -> up parent acc
  in
  up c []

let lca p c1 c2 =
  if Ids.Class_id.equal c1 c2 then Some c1
  else
    let a2 = ancestors p c2 in
    List.find_opt
      (fun a -> List.exists (Ids.Class_id.equal a) a2)
      (ancestors p c1)

let join p a b =
  if equal a b then a
  else
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Top, _ | _, Top -> Top
    | Conflict, _ | _, Conflict -> Conflict
    | Int, (Null | Ref _ | Arr | Any_ref) | (Null | Ref _ | Arr | Any_ref), Int
      ->
        Conflict
    | Int, Int -> Int
    | Null, x | x, Null -> x
    | Ref c1, Ref c2 -> (
        match lca p c1 c2 with Some c -> Ref c | None -> Any_ref)
    | (Ref _ | Arr | Any_ref), (Ref _ | Arr | Any_ref) -> Any_ref

let compatible a b =
  let is_int = function Int -> true | _ -> false in
  let is_ref = function Null | Ref _ | Arr | Any_ref -> true | _ -> false in
  not ((is_int a && is_ref b) || (is_ref a && is_int b))

let cone p c =
  Array.to_list (Program.classes p)
  |> List.filter (fun k -> Program.is_subclass p ~sub:k.Clazz.id ~super:c)

let cone_max_fields p c =
  List.fold_left (fun acc k -> max acc (Clazz.field_count k)) 0 (cone p c)

let cone_implements p c sel =
  List.exists
    (fun k -> Option.is_some (Program.dispatch p k.Clazz.id sel))
    (cone p c)

let related p c1 c2 =
  Program.is_subclass p ~sub:c1 ~super:c2
  || Program.is_subclass p ~sub:c2 ~super:c1

let pp p fmt t =
  match t with
  | Bot -> Format.pp_print_string fmt "bot"
  | Int -> Format.pp_print_string fmt "int"
  | Null -> Format.pp_print_string fmt "null"
  | Ref c -> Format.pp_print_string fmt (Program.clazz p c).Clazz.name
  | Arr -> Format.pp_print_string fmt "array"
  | Any_ref -> Format.pp_print_string fmt "anyref"
  | Conflict -> Format.pp_print_string fmt "int/ref-conflict"
  | Top -> Format.pp_print_string fmt "top"

let to_string p t = Format.asprintf "%a" (pp p) t
