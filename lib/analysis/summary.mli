(** Compositional interprocedural method summaries.

    A bottom-up pass over the call graph's SCC condensation ({!Scc})
    computing, for every method, facts derivable from bytecode alone —
    no profile, no execution:

    - {e size after inlining}: the method's size in classification units
      once every statically bound Tiny/Small callee is expanded into it
      (the static analogue of the JIT's expansion estimate);
    - {e side-effect kind}: whether the method (transitively) reads or
      writes heap/global state, allocates, or emits output — [pure]
      means none of writes/allocations/output, so executing the method
      can only observe state and burn cycles;
    - {e parameter escape}: which parameter slots may (transitively)
      flow into a heap object, a global, or a caller via return;
    - {e return-constness}: a method that returns the same compile-time
      constant on every normal path;
    - {e always-throws}: no normal return is reachable — every path
      traps (division by a constant zero, a definitely-null
      dereference, a negative constant array size, a call to an
      always-throwing method) or loops forever;
    - {e monomorphic dispatch}: per virtual call site, the CHA proof
      that the sealed class universe admits exactly one target.

    Within one SCC the pass iterates to a fixpoint from optimistic
    assumptions (effect and escape flags only grow); calls that stay
    inside the component are treated as opaque for constness, size and
    always-throws — matching the oracle, which never inlines recursive
    edges. Per-method constness and escape run as forward dataflow
    problems on the {!Dataflow} engine.

    The whole table is a pure, deterministic function of the sealed
    program: same program, same table, independent of parallelism. *)

open Acsi_bytecode

type effects = {
  reads_heap : bool;  (** [Get_field]/[Array_get]/[Array_len]/[Get_global] *)
  writes_heap : bool;  (** [Put_field]/[Array_set]/[Put_global] *)
  allocates : bool;  (** [New]/[Array_new] *)
  io : bool;  (** [Print_int] *)
}

type meth_summary = {
  meth : Ids.Method_id.t;
  units : int;  (** own body size in classification units *)
  size_est : int;  (** size after inlining statically bound small callees *)
  effects : effects;  (** transitive, over every CHA-reachable callee *)
  pure : bool;  (** no writes, no allocations, no output *)
  escapes : bool array;
      (** per parameter slot (receiver first for instance methods):
          may the argument flow into the heap or a global? *)
  returns_param : bool array;
      (** per parameter slot: may the argument be the returned value? *)
  return_const : int option;
      (** [Some k] when every reachable normal return yields [k] *)
  always_throws : bool;  (** no normal return is reachable *)
  mono_sites : (int * Ids.Method_id.t) list;
      (** virtual call sites proven monomorphic by CHA: [(pc, the one
          target)], ascending pc *)
  virtual_sites : int;  (** total virtual call sites in the body *)
  seed_sites : int;
      (** call sites the static oracle would provably inline: unique
          non-recursive target, Tiny/Small after its own inlining, and
          not always-throwing *)
}

type table

val analyze : Program.t -> table
(** Never raises: a method whose body defeats the analysis (it cannot
    happen for a verified program) gets a fully conservative row. *)

val get : table -> Ids.Method_id.t -> meth_summary
val scc : table -> Scc.t
val rows : table -> meth_summary array
(** Method-id (declaration) order. *)

val seed_worthy : table -> Ids.Method_id.t -> bool
(** [seed_sites > 0]: the method is a provably-good static compilation
    candidate — optimizing it at install time is guaranteed to inline
    something. *)

val seed_candidates : table -> Ids.Method_id.t list
(** Every seed-worthy method, ascending id order. *)

val effects_to_string : effects -> string
(** ["pure"], or a ["+"]-joined subset of ["rd"], ["wr"], ["al"],
    ["io"]. *)

val print : Format.formatter -> Program.t -> table -> unit
(** The deterministic per-method summary table ([acsi-run analyze]). *)
