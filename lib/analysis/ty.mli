(** The kind lattice of the typed verifier.

    {v
                 Top
                  |
               Conflict
              /        \
            Int       Any_ref
                     /       \
                   Arr      Ref c   (classes ordered by the hierarchy)
                     \       /
                       Null
                          \
                          Bot
    v}

    [Top] is "no information" — parameters, fields, globals and call
    results are untyped, so anything flowing from them stays [Top] and
    is never reported. [Conflict] sits strictly below [Top] and records
    a {e provable} int/reference mix at a join: joining [Int] with any
    reference kind yields [Conflict], and {e using} a [Conflict] value
    where an int or a reference is required is a definite error the
    checker reports. The split is what keeps the verifier
    definite-error-only: imprecision (Top) is permissive, contradiction
    (Conflict) is not. *)

open Acsi_bytecode

type t =
  | Bot  (** unreachable / no value *)
  | Int
  | Null
  | Ref of Ids.Class_id.t  (** object of this class or a subclass *)
  | Arr
  | Any_ref  (** some reference: object, array or null *)
  | Conflict  (** int on one path, reference on another *)
  | Top

val equal : t -> t -> bool

val join : Program.t -> t -> t -> t
(** Least upper bound; [Ref a ⊔ Ref b] is the least common ancestor
    class when one exists, else [Any_ref]. *)

val compatible : t -> t -> bool
(** Whether the two types can describe the same runtime value (used by
    the OSR compatibility check — reference kinds all share [Null], so
    only a definite int/reference disagreement is incompatible). *)

val lca : Program.t -> Ids.Class_id.t -> Ids.Class_id.t -> Ids.Class_id.t option
(** Least common ancestor in the class hierarchy. *)

val cone_max_fields : Program.t -> Ids.Class_id.t -> int
(** Max field count over the class and all its subclasses. A field
    index is definitely out of bounds for [Ref c] only when it exceeds
    this — [c] is an upper bound, the runtime class may be any
    subclass (inlined bodies read subclass fields through
    supertype-typed receivers). *)

val cone_implements : Program.t -> Ids.Class_id.t -> Ids.Selector.t -> bool
(** Whether any class in the subclass cone dispatches the selector —
    a virtual call on [Ref c] is definitely wrong only when none
    does. *)

val related : Program.t -> Ids.Class_id.t -> Ids.Class_id.t -> bool
(** Subclass in either direction; a [Call_direct] receiver class
    unrelated to the callee's owner is a definite error. *)

val pp : Program.t -> Format.formatter -> t -> unit
val to_string : Program.t -> t -> string
