open Acsi_bytecode

let unreachable_ranges body =
  let n = Array.length body in
  let live = Cfg.reachable_instrs body in
  let ranges = ref [] in
  let start = ref (-1) in
  for pc = 0 to n - 1 do
    if not live.(pc) then begin
      if !start < 0 then start := pc
    end
    else if !start >= 0 then begin
      ranges := (!start, pc - 1) :: !ranges;
      start := -1
    end
  done;
  if !start >= 0 then ranges := (!start, n - 1) :: !ranges;
  List.rev !ranges

(* The front end terminates every body with an epilogue return that an
   explicit return on all paths strands; a trailing unreachable range
   of nothing but returns is its signature, not dead user code. *)
let is_epilogue body (first, last) =
  last = Array.length body - 1
  && (let all_returns = ref true in
      for pc = first to last do
        match body.(pc) with
        | Instr.Return | Instr.Return_void -> ()
        | _ -> all_returns := false
      done;
      !all_returns)

let meth p (m : Meth.t) =
  let body = m.Meth.body in
  match (try Verify.meth p m; None with Verify.Error msg -> Some msg) with
  | Some msg -> [ Diag.of_verify_error msg ]
  | None ->
      (* Reverse-accumulate; a single [List.rev] at the end restores
         report order (the old [@ [d]] per finding was quadratic). *)
      let diags = ref [] in
      let add ?pc fmt =
        Format.kasprintf
          (fun message ->
            diags := Diag.make ~meth:m.Meth.name ?pc message :: !diags)
          fmt
      in
      List.iter
        (fun (first, last) ->
          if not (is_epilogue body (first, last)) then
            if first = last then add ~pc:first "unreachable code"
            else add ~pc:first "unreachable code (pcs %d-%d)" first last)
        (unreachable_ranges body);
      (* Local slots never read or written. Parameters land in the
         leading slots, and slot 0 exists even in parameterless static
         methods (the front end allocates at least one). *)
      let used = Array.make (max 1 m.Meth.max_locals) false in
      Array.iter
        (fun instr ->
          match instr with
          | Instr.Load i | Instr.Store i ->
              if i >= 0 && i < Array.length used then used.(i) <- true
          | _ -> ())
        body;
      for i = max (Meth.param_slots m) 1 to m.Meth.max_locals - 1 do
        if not used.(i) then add "local %d is never used" i
      done;
      Typecheck.meth_diags p m @ List.rev !diags

let program p =
  List.concat_map (fun m -> meth p m) (Array.to_list (Program.methods p))

(* --- summary-driven advisory notes ------------------------------------ *)

(* Interprocedural findings backed by {!Summary}: dead work and dead
   dispatch the intraprocedural lints above cannot see. Advisory (the
   CLI prints them without failing): a monomorphic virtual call, say, is
   legitimate source code — the note tells the author the dynamic
   dispatch is provably dead weight, not that the program is wrong. *)
let meth_notes summaries p (m : Meth.t) =
  match (try Verify.meth p m; None with Verify.Error _ -> Some ()) with
  | Some () -> []
  | None ->
      let body = m.Meth.body in
      let live = Cfg.reachable_instrs body in
      let notes = ref [] in
      let add ~pc fmt =
        Format.kasprintf
          (fun message ->
            notes := Diag.make ~meth:m.Meth.name ~pc message :: !notes)
          fmt
      in
      let callee_name mid = (Program.meth p mid).Meth.name in
      Array.iteri
        (fun pc instr ->
          if live.(pc) && Instr.is_call instr then begin
            let targets = Scc.call_targets p instr in
            let summaries_of =
              List.map (fun mid -> Summary.get summaries mid) targets
            in
            let all f = targets <> [] && List.for_all f summaries_of in
            (match instr with
            | Instr.Call_virtual (sel, _) -> (
                match Program.monomorphic_target p sel with
                | Some target ->
                    add ~pc
                      "virtual dispatch of %s is monomorphic (only target is \
                       %s); a direct call would be cheaper"
                      (Program.selector_name p sel)
                      (callee_name target)
                | None -> ())
            | _ -> ());
            if all (fun (s : Summary.meth_summary) -> s.Summary.always_throws)
            then
              add ~pc "call to %s never returns normally (always throws)"
                (match targets with
                | [ mid ] -> callee_name mid
                | _ -> "an always-throwing method");
            let returns =
              match targets with
              | mid :: _ -> (Program.meth p mid).Meth.returns
              | [] -> false
            in
            if
              returns
              && pc + 1 < Array.length body
              && body.(pc + 1) = Instr.Pop
              && all (fun (s : Summary.meth_summary) ->
                     s.Summary.pure && not s.Summary.always_throws)
            then
              add ~pc "result of a call to pure %s is immediately discarded"
                (match targets with
                | [ mid ] -> callee_name mid
                | _ -> "methods")
          end)
        body;
      List.rev !notes

let program_notes ?summaries p =
  let summaries =
    match summaries with Some s -> s | None -> Summary.analyze p
  in
  List.concat_map
    (fun m -> meth_notes summaries p m)
    (Array.to_list (Program.methods p))
