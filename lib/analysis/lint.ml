open Acsi_bytecode

let unreachable_ranges body =
  let n = Array.length body in
  let live = Cfg.reachable_instrs body in
  let ranges = ref [] in
  let start = ref (-1) in
  for pc = 0 to n - 1 do
    if not live.(pc) then begin
      if !start < 0 then start := pc
    end
    else if !start >= 0 then begin
      ranges := (!start, pc - 1) :: !ranges;
      start := -1
    end
  done;
  if !start >= 0 then ranges := (!start, n - 1) :: !ranges;
  List.rev !ranges

(* The front end terminates every body with an epilogue return that an
   explicit return on all paths strands; a trailing unreachable range
   of nothing but returns is its signature, not dead user code. *)
let is_epilogue body (first, last) =
  last = Array.length body - 1
  && (let all_returns = ref true in
      for pc = first to last do
        match body.(pc) with
        | Instr.Return | Instr.Return_void -> ()
        | _ -> all_returns := false
      done;
      !all_returns)

let meth p (m : Meth.t) =
  let body = m.Meth.body in
  match (try Verify.meth p m; None with Verify.Error msg -> Some msg) with
  | Some msg -> [ Diag.of_verify_error msg ]
  | None ->
      let diags = ref (Typecheck.meth_diags p m) in
      let add ?pc fmt =
        Format.kasprintf
          (fun message ->
            diags := !diags @ [ Diag.make ~meth:m.Meth.name ?pc message ])
          fmt
      in
      List.iter
        (fun (first, last) ->
          if not (is_epilogue body (first, last)) then
            if first = last then add ~pc:first "unreachable code"
            else add ~pc:first "unreachable code (pcs %d-%d)" first last)
        (unreachable_ranges body);
      (* Local slots never read or written. Parameters land in the
         leading slots, and slot 0 exists even in parameterless static
         methods (the front end allocates at least one). *)
      let used = Array.make (max 1 m.Meth.max_locals) false in
      Array.iter
        (fun instr ->
          match instr with
          | Instr.Load i | Instr.Store i ->
              if i >= 0 && i < Array.length used then used.(i) <- true
          | _ -> ())
        body;
      for i = max (Meth.param_slots m) 1 to m.Meth.max_locals - 1 do
        if not used.(i) then add "local %d is never used" i
      done;
      !diags

let program p =
  Array.fold_left (fun acc m -> acc @ meth p m) [] (Program.methods p)
