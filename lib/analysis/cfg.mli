(** Control-flow graphs over [Instr.t] bodies.

    One construction shared by every client that reasons about control
    flow: the dataflow engine ({!Dataflow}), the peephole optimizer's
    block boundaries and dead-code sweep, the lint driver's
    unreachable-code report, and the JIT invariant checker's dominator
    queries. Out-of-range branch targets are ignored here (the verifier
    rejects them); a [Cfg] can therefore be built for malformed corpus
    bodies without raising. *)

open Acsi_bytecode

type block = {
  first : int;  (** pc of the block's first instruction *)
  last : int;  (** pc of the block's last instruction (inclusive) *)
  succs : int list;  (** successor block indexes *)
  preds : int list;  (** predecessor block indexes *)
}

type t = {
  instrs : Instr.t array;
  blocks : block array;  (** in ascending pc order; block 0 holds pc 0 *)
  block_of : int array;  (** pc -> block index *)
  reachable : bool array;  (** per block, from block 0 *)
  rpo : int array;  (** reachable blocks in reverse postorder *)
}

val falls_through : Instr.t -> bool
(** Whether control can continue to [pc + 1] ([Jump], [Return] and
    [Return_void] cannot; guards and conditional jumps can). *)

val leaders : Instr.t array -> bool array
(** Positions control flow can enter other than by falling through:
    pc 0, every branch target, and every successor of a branch,
    guard, or return. *)

val reachable_instrs : Instr.t array -> bool array
(** Per-instruction reachability from pc 0. *)

val make : Instr.t array -> t

val dominators : t -> int array
(** Immediate dominators, per block: [idom.(0) = 0], [-1] for
    unreachable blocks (Cooper–Harvey–Kennedy over the RPO). *)

val dominates : t -> idom:int array -> int -> int -> bool
(** [dominates t ~idom a b]: instruction at pc [a] dominates the one at
    pc [b] (both must be reachable; false otherwise). *)
